(* CLI: offline conflict diagnosis over a recorded JSONL trace.

   Replays a trace written by `stm_run --trace-out t.jsonl` or
   `stm_bench --stress ... --diag-out t.jsonl` through the same
   heatmap / causality / flight-recorder pipeline that runs live, and
   renders the result as text, JSON, or a Perfetto-annotated Chrome
   trace.

   Examples:
     stm_diag trace.jsonl
     stm_diag trace.jsonl --json --out report.json
     stm_diag trace.jsonl --perfetto annotated.json
     stm_diag trace.jsonl --streak 4 --k 5 *)

open Cmdliner

let with_out path f =
  match path with
  | None -> f Fmt.stdout
  | Some p -> (
      try
        Out_channel.with_open_text p (fun oc ->
            let ppf = Format.formatter_of_out_channel oc in
            f ppf;
            Format.pp_print_flush ppf ())
      with Sys_error m ->
        Fmt.epr "cannot write %s: %s@." p m;
        exit 2)

let main file json out perfetto k threshold streak capacity quiet =
  let ingested =
    try Stm_diag.Ingest.of_file file
    with Sys_error m ->
      Fmt.epr "%s@." m;
      exit 2
  in
  if ingested.Stm_diag.Ingest.parsed = 0 then begin
    Fmt.epr "%s: no parsable trace events (%d lines skipped)@." file
      ingested.Stm_diag.Ingest.skipped;
    exit 2
  end;
  if (not quiet) && ingested.Stm_diag.Ingest.skipped > 0 then
    Fmt.epr "%s: skipped %d unparsable lines (%d events ingested)@." file
      ingested.Stm_diag.Ingest.skipped ingested.Stm_diag.Ingest.parsed;
  let d =
    Stm_diag.Diag.create ~flight_capacity:capacity ~streak_threshold:streak
      ~resolve:ingested.Stm_diag.Ingest.resolve ()
  in
  Stm_diag.Diag.feed_all d ingested.Stm_diag.Ingest.entries;
  (match perfetto with
  | Some p ->
      with_out (Some p) (fun ppf ->
          Fmt.pf ppf "%s@."
            (Stm_obs.Json.to_string
               (Stm_diag.Diag.perfetto ~k d ingested.Stm_diag.Ingest.entries)));
      if not quiet then Fmt.epr "perfetto trace written to %s@." p
  | None -> ());
  with_out out (fun ppf ->
      if json then
        Fmt.pf ppf "%s@."
          (Stm_obs.Json.to_string (Stm_diag.Diag.to_json ~k ~threshold d))
      else Stm_diag.Diag.report ~k ~threshold ppf d);
  0

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE.jsonl"
        ~doc:
          "JSONL trace to analyze (written by $(b,stm_run --trace-out) or $(b,stm_bench --stress ... --diag-out)). Traces recorded before the abort-attribution fields existed degrade to unattributed aborts.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the report as one stm-diag/1 JSON document instead of text.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write the report to $(docv) instead of stdout.")

let perfetto_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "perfetto" ] ~docv:"FILE"
        ~doc:
          "Additionally write the trace as Chrome trace_event JSON with diagnosis annotations (per-granule heat counter tracks, abort-edge instants naming the aggressor); open in Perfetto / chrome://tracing.")

let k_arg =
  Arg.(
    value & opt int 10
    & info [ "k" ] ~docv:"N" ~doc:"Hottest granules to report (default 10).")

let threshold_arg =
  Arg.(
    value & opt int 50
    & info [ "threshold" ] ~docv:"N"
        ~doc:
          "Consecutive-abort streak that counts as starvation in the fairness section (default 50, the stress harness's verdict threshold).")

let streak_arg =
  Arg.(
    value & opt int 8
    & info [ "streak" ] ~docv:"N"
        ~doc:
          "Consecutive-abort streak that freezes a flight-recorder incident (default 8).")

let capacity_arg =
  Arg.(
    value & opt int 512
    & info [ "flight-capacity" ] ~docv:"N"
        ~doc:"Flight-recorder window size in events (default 512).")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress progress notes on stderr.")

let cmd =
  let doc = "diagnose contention in a recorded STM trace" in
  Cmd.v (Cmd.info "stm_diag" ~doc)
    Term.(
      const main $ file_arg $ json_arg $ out_arg $ perfetto_arg $ k_arg
      $ threshold_arg $ streak_arg $ capacity_arg $ quiet_arg)

let () = exit (Cmd.eval' cmd)
