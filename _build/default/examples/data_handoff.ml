(* Data handoff: the motivating scenario for the NAIT analysis
   (Section 5) - objects transferred between threads through a
   transactional queue. The queue needs isolation barriers; the items
   passed through it do not, but only NAIT can prove that: the items are
   thread-SHARED (they move between threads), so thread-local analysis
   keeps every barrier on them.

   Run with:  dune exec examples/data_handoff.exe *)

open Stm_analysis

let src =
  {|
class Item { int payload; int checksum; }
class Queue {
  static Item[] slots;
  static int head;
  static int tail;
}
class Producer extends Thread {
  int count;
  void run() {
    for (int i = 0; i < count; i++) {
      Item it = new Item();
      it.payload = i * 3;            // plain stores: never in a txn
      it.checksum = i * 3 + 1;
      atomic {
        Queue.slots[Queue.tail % Queue.slots.length] = it;
        Queue.tail = Queue.tail + 1;
      }
    }
  }
}
class Consumer extends Thread {
  int count;
  int sum;
  void run() {
    int got = 0;
    while (got < count) {
      Item it = null;
      atomic {
        if (Queue.head < Queue.tail) {
          it = Queue.slots[Queue.head % Queue.slots.length];
          Queue.head = Queue.head + 1;
        }
      }
      if (it != null) {
        assert(it.checksum == it.payload + 1);   // plain loads
        sum = sum + it.payload;
        got = got + 1;
      } else {
        tick(60);  // polling back-off while the queue is empty
      }
    }
  }
}
class Main {
  static void main() {
    int n = param("items");
    Queue.slots = new Item[64];
    Producer p = new Producer();
    p.count = n;
    Consumer c = new Consumer();
    c.count = n;
    // hand the items off in two phases so the makespan comparison is
    // not dominated by queue-polling dynamics
    int pt = spawn(p);
    join(pt);
    int ct = spawn(c);
    join(ct);
    print(c.sum);
  }
}
|}

let barrier_stats prog cfg =
  let out =
    Stm_ir.Interp.run ~cfg ~params:[ ("items", 50) ] prog
  in
  (match out.Stm_ir.Interp.result.Stm_runtime.Sched.exns with
  | [] -> ()
  | (tid, e) :: _ ->
      Fmt.failwith "thread %d raised %s" tid (Printexc.to_string e));
  out

let () =
  Fmt.pr "Producer/consumer data handoff through a transactional queue@.@.";

  (* static picture: what each analysis removes *)
  let prog = Stm_jtlang.Jt.compile ~name:"data_handoff" src in
  Fmt.pr "%a@." Barrier_stats.pp_table
    (Barrier_stats.count ~name:"handoff" prog);

  (* dynamic picture: barriers actually executed *)
  let cfg = Stm_core.Config.eager_strong in
  let baseline = barrier_stats (Stm_jtlang.Jt.compile src) cfg in
  let optimized_prog = Stm_jtlang.Jt.compile src in
  let pta = Pta.analyze optimized_prog in
  let removed = Nait.apply optimized_prog pta in
  let optimized = barrier_stats optimized_prog cfg in
  let b s = s.Stm_core.Stats.barrier_reads + s.Stm_core.Stats.barrier_writes in
  Fmt.pr "checksum (both runs): %s = %s@."
    (String.concat "," baseline.Stm_ir.Interp.prints)
    (String.concat "," optimized.Stm_ir.Interp.prints);
  Fmt.pr "barriers executed, strong atomicity unoptimized : %d@."
    (b baseline.Stm_ir.Interp.stats);
  Fmt.pr "barriers executed, after NAIT (%d sites removed) : %d@." removed
    (b optimized.Stm_ir.Interp.stats);
  Fmt.pr "cycles: %d -> %d@."
    baseline.Stm_ir.Interp.result.Stm_runtime.Sched.makespan
    optimized.Stm_ir.Interp.result.Stm_runtime.Sched.makespan;
  Fmt.pr
    "@.NAIT removes the barriers on the items' fields (they are never@.\
     accessed inside a transaction) while keeping the queue protected;@.\
     the thread-local analysis can remove none of them, because the items@.\
     are reachable from two threads (TL-NAIT column = 0, NAIT-TL > 0).@."
