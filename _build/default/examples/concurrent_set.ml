(* A sorted linked-list set built directly on the STM public API - the
   kind of library data structure a user of this STM would write.

   Run with:  dune exec examples/concurrent_set.exe

   Transactions insert and remove nodes; a prober thread runs
   membership tests with plain non-transactional reads. The example also
   demonstrates two patterns real STM code needs:

   - [atomic_robust]: a doomed transaction (one that has read
     inconsistent state and will abort) can fault before its next
     validation point - e.g. dereference a node that a concurrent abort
     unlinked and reset. The managed-runtime pattern is to catch the
     fault, check [Stm.valid], and abort-and-retry when the transaction
     is indeed doomed (Section 3.4's discussion of run-time faults).
   - defensive non-transactional reads under weak atomicity: a plain
     traversal can observe a node whose fields a rolled-back transaction
     has already reset; under strong atomicity the barriers make that
     impossible. *)

open Stm_runtime
open Stm_core

(* Catch runtime faults caused by doomed executions; re-raise genuine
   bugs (the transaction validates as consistent). *)
let atomic_robust f =
  Stm.atomic (fun () ->
      try f ()
      with Invalid_argument _ when not (Stm.valid ()) -> Stm.abort_and_retry ())

(* node layout: [0] = key, [1] = next *)
let key n = Stm.to_int (Stm.read n 0)
let next n = Stm.read n 1

let make_set () =
  let head = Stm.alloc_public ~cls:"Node" 2 in
  Stm.write head 0 (Stm.vint min_int);
  Stm.write head 1 Heap.Vnull;
  head

let rec locate pred k =
  match next pred with
  | Heap.Vnull -> pred
  | v ->
      let n = Stm.to_obj v in
      if key n < k then locate n k else pred

let insert set k =
  atomic_robust (fun () ->
      let pred = locate set k in
      let succ = next pred in
      let exists =
        match succ with
        | Heap.Vnull -> false
        | v -> key (Stm.to_obj v) = k
      in
      if exists then false
      else begin
        let node = Stm.alloc ~cls:"Node" 2 in
        Stm.write node 0 (Stm.vint k);
        Stm.write node 1 succ;
        Stm.write pred 1 (Stm.vref node);
        true
      end)

let remove set k =
  atomic_robust (fun () ->
      let pred = locate set k in
      match next pred with
      | Heap.Vnull -> false
      | v ->
          let n = Stm.to_obj v in
          if key n = k then begin
            Stm.write pred 1 (next n);
            true
          end
          else false)

(* Non-transactional membership probe. Under weak atomicity a traversal
   can race with a rollback and see reset fields, so it must read
   defensively; under strong atomicity the defensive arm never fires. *)
let contains set k =
  let torn = ref false in
  let rec go node =
    match Stm.read node 1 with
    | Heap.Vnull -> false
    | Heap.Vref n -> (
        match Stm.read n 0 with
        | Heap.Vint k' -> if k' < k then go n else k' = k
        | _ ->
            torn := true;
            false)
    | _ ->
        torn := true;
        false
  in
  let r = go set in
  (r, !torn)

let to_list set =
  let rec go node acc =
    match Heap.get node 1 with
    | Heap.Vnull -> List.rev acc
    | Heap.Vref n -> go n (Stm.to_int (Heap.get n 0) :: acc)
    | _ -> assert false
  in
  go set []

let run_demo cfg =
  let probe_hits = ref 0 in
  let torn_probes = ref 0 in
  let final = ref [] in
  let result, stats =
    Stm.run ~cfg (fun () ->
        let set = make_set () in
        let worker seed () =
          let rng = Det_rng.create seed in
          for _ = 1 to 120 do
            let k = Det_rng.int rng 60 in
            if Det_rng.int rng 3 = 0 then ignore (remove set k : bool)
            else ignore (insert set k : bool)
          done
        in
        let prober () =
          for _round = 0 to 2 do
            for k = 0 to 59 do
              (* pace the probes so they overlap the mutators in every
                 configuration, not just the slow ones *)
              Sched.tick 300;
              let hit, torn = contains set k in
              if hit then incr probe_hits;
              if torn then incr torn_probes
            done
          done
        in
        let ts =
          [
            Sched.spawn (worker 11);
            Sched.spawn (worker 22);
            Sched.spawn (worker 33);
            Sched.spawn prober;
          ]
        in
        List.iter Sched.join ts;
        final := to_list set)
  in
  assert (result.Sched.status = Sched.Completed);
  (match result.Sched.exns with
  | [] -> ()
  | (t, e) :: _ -> Fmt.failwith "thread %d: %s" t (Printexc.to_string e));
  let sorted_unique =
    let rec ok = function
      | a :: (b :: _ as tl) -> a < b && ok tl
      | _ -> true
    in
    ok !final
  in
  (sorted_unique, List.length !final, !probe_hits, !torn_probes, stats)

let () =
  Fmt.pr "Transactional sorted-set: 3 mutators + 1 plain-read prober@.@.";
  Fmt.pr "%-26s %-10s %-5s %-11s %-12s %-8s %s@." "configuration" "invariant"
    "size" "probe hits" "torn probes" "commits" "aborts";
  let finals = ref [] in
  List.iter
    (fun (name, cfg) ->
      let ok, size, hits, torn, stats = run_demo cfg in
      finals := size :: !finals;
      Fmt.pr "%-26s %-10b %-5d %-11d %-12d %-8d %d@." name ok size hits torn
        stats.Stats.commits stats.Stats.aborts)
    [
      ("weak (eager)", Config.eager_weak);
      ("weak (lazy)", Config.lazy_weak);
      ("strong (eager)", Config.eager_strong);
      ("strong (lazy)", Config.lazy_strong);
      ("strong + DEA", Config.(with_dea eager_strong));
      ("weak + quiescence", Config.(with_quiescence eager_weak));
    ];
  Fmt.pr
    "@.The set stays sorted and duplicate-free everywhere. Torn probes -@.\
     the defensive arm of the unsynchronized traversal firing - can only@.\
     happen under weak atomicity; strong atomicity's barriers rule them out.@."
