(* The paper's Figure 1: privatizing an item out of a shared list and
   accessing it unprotected.

   Run with:  dune exec examples/privatization.exe

   Thread 1 atomically removes the item and then reads its two fields
   with plain loads; Thread 2 atomically increments both fields if the
   item is still in the list. In every sequentially-consistent execution
   r1 = r2 - either both increments happened before the privatization or
   neither did. The systematic explorer shows which STM implementations
   break this, and that both strong atomicity and quiescence repair it. *)

open Stm_litmus

let () =
  let program = Programs.privatization in
  Fmt.pr "Figure 1 privatization idiom: can Thread 1 observe r1 <> r2?@.@.";
  Fmt.pr "%-16s %-10s %-44s@." "mode" "anomaly" "outcomes (count)";
  List.iter
    (fun mode ->
      let cfg = Modes.config mode in
      let e =
        Explorer.explore ~cfg
          ~make:(fun () -> program.Programs.build (Modes.harness mode cfg))
          ()
      in
      let outcomes =
        String.concat ", "
          (List.map (fun (o, n) -> Fmt.str "%s (x%d)" o n) e.Explorer.outcomes)
      in
      Fmt.pr "%-16s %-10b %-44s@." (Modes.name mode)
        (Explorer.observed e program.Programs.is_anomalous)
        outcomes)
    (Modes.all_fig6
    @ [
        Modes.Weak_quiesce Stm_core.Config.Eager;
        Modes.Weak_quiesce Stm_core.Config.Lazy;
      ]);
  Fmt.pr
    "@.weak-eager breaks it with a speculative dirty read (the doomed@.\
     transaction's in-place increments); weak-lazy with a memory-ordering@.\
     violation (the committed transaction's pending write-back). Locks,@.\
     strong atomicity, and weak atomicity + quiescence all preserve r1 = r2,@.\
     exactly as Sections 2.5 and 3.4 describe.@."
