(* Quickstart: the STM public API on the simulated multiprocessor.

   Run with:  dune exec examples/quickstart.exe

   Two bank accounts and concurrent transactional transfers. Each
   transfer briefly writes a sentinel (-1) into the first account before
   storing the final balance - an intermediate state that is private to
   the transaction. An unsynchronized auditor thread polls the account
   with plain reads:

   - under weak atomicity with eager versioning the auditor observes the
     sentinel (an intermediate dirty read, Figure 2c);
   - under lazy versioning it cannot (updates are buffered) - but other
     programs then suffer ordering anomalies instead (see
     examples/privatization.exe);
   - under strong atomicity the read barrier orders the auditor's loads
     against transactions, and the sentinel is never visible.

   Note what strong atomicity does NOT promise: the auditor's two reads
   of the two accounts are separate operations, so a transfer may commit
   between them - just as with locks. Isolation guards each access, not
   unsynchronized multi-read sequences; those still need a transaction. *)

open Stm_runtime
open Stm_core

let n_transfers = 150
let geti o f = Stm.to_int (Stm.read o f)

let run_bank cfg =
  let dirty_reads = ref 0 in
  let result, stats =
    Stm.run ~cfg (fun () ->
        let acct = Stm.alloc_public ~cls:"Accounts" 2 in
        Stm.write acct 0 (Stm.vint 600);
        Stm.write acct 1 (Stm.vint 400);

        let transferer seed () =
          for i = 1 to n_transfers do
            let amount = ((seed * 13) + i) mod 50 in
            Stm.atomic (fun () ->
                let from_balance = geti acct 0 in
                (* transient sentinel: visible only to this transaction *)
                Stm.write acct 0 (Stm.vint (-1));
                Stm.write acct 1 (Stm.vint (geti acct 1 + amount));
                Stm.write acct 0 (Stm.vint (from_balance - amount)))
          done
        in
        let auditor () =
          for _ = 1 to 3 * n_transfers do
            if geti acct 0 = -1 then incr dirty_reads
          done
        in
        let threads =
          [
            Sched.spawn ~name:"transfer-1" (transferer 1);
            Sched.spawn ~name:"transfer-2" (transferer 2);
            Sched.spawn ~name:"auditor" auditor;
          ]
        in
        List.iter Sched.join threads;
        (* the books always balance once everything committed *)
        let total = geti acct 0 + geti acct 1 in
        if total <> 1000 then Fmt.failwith "books unbalanced: %d" total)
  in
  assert (result.Sched.status = Sched.Completed);
  (match result.Sched.exns with
  | [] -> ()
  | (t, e) :: _ -> Fmt.failwith "thread %d: %s" t (Printexc.to_string e));
  (!dirty_reads, result.Sched.makespan, stats)

let () =
  Fmt.pr "Bank-transfer demo: 2 transactional transferers + 1 plain-read auditor@.@.";
  Fmt.pr "%-28s %-22s %-10s %-9s %s@." "configuration" "intermediate sentinel"
    "cycles" "commits" "aborts";
  List.iter
    (fun (name, cfg) ->
      let dirty, makespan, stats = run_bank cfg in
      Fmt.pr "%-28s %-22s %-10d %-9d %d@." name
        (if dirty > 0 then Fmt.str "SEEN %d times" dirty else "never seen")
        makespan stats.Stats.commits stats.Stats.aborts)
    [
      ("weak atomicity (eager)", Config.eager_weak);
      ("weak atomicity (lazy)", Config.lazy_weak);
      ("strong atomicity (eager)", Config.eager_strong);
      ("strong atomicity (lazy)", Config.lazy_strong);
      ("strong + dynamic escape", Config.(with_dea eager_strong));
    ];
  Fmt.pr
    "@.Weak atomicity with eager versioning leaks the transaction's@.\
     intermediate state to the unsynchronized auditor; strong atomicity@.\
     never does, at the cost of read/write barriers outside transactions.@."
