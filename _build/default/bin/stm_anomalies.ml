(* CLI: explore the weak-atomicity anomalies of Figures 1-5 and decide
   the Figure 6 matrix by systematic schedule exploration.

   Examples:
     stm_anomalies                          # the whole Figure 6 matrix
     stm_anomalies -p sdr -m weak-eager     # one cell, with outcome sets
     stm_anomalies --privatization          # Figure 1 incl. quiescence
     stm_anomalies -p glu --granule 1       # granularity ablation *)

open Cmdliner
open Stm_litmus

let mode_of_string = function
  | "weak-eager" -> Ok (Modes.Weak Stm_core.Config.Eager)
  | "weak-lazy" -> Ok (Modes.Weak Stm_core.Config.Lazy)
  | "locks" -> Ok Modes.Locks
  | "strong-eager" -> Ok (Modes.Strong Stm_core.Config.Eager)
  | "strong-lazy" -> Ok (Modes.Strong Stm_core.Config.Lazy)
  | "quiesce-eager" -> Ok (Modes.Weak_quiesce Stm_core.Config.Eager)
  | "quiesce-lazy" -> Ok (Modes.Weak_quiesce Stm_core.Config.Lazy)
  | s -> Error (`Msg ("unknown mode " ^ s))

let run_one program mode bound max_runs granule =
  let cfg =
    Modes.config
      ~granule:(Option.value ~default:program.Programs.needs_granule granule)
      mode
  in
  let e =
    Explorer.explore ~preemption_bound:bound ~max_runs ~cfg
      ~make:(fun () -> program.Programs.build (Modes.harness mode cfg))
      ()
  in
  Fmt.pr "program     : %s (Figure %s)@." program.Programs.name
    program.Programs.figure;
  Fmt.pr "anomaly     : %s@." program.Programs.anomaly;
  Fmt.pr "mode        : %s@." (Modes.name mode);
  Fmt.pr "schedules   : %d (truncated: %b, livelocks: %d, deadlocks: %d)@."
    e.Explorer.runs e.Explorer.truncated e.Explorer.livelocks
    e.Explorer.deadlocks;
  Fmt.pr "outcomes    :@.";
  List.iter
    (fun (o, n) ->
      Fmt.pr "  %-30s x%-6d %s@." o n
        (if program.Programs.is_anomalous o then "<- ANOMALY" else ""))
    e.Explorer.outcomes;
  Fmt.pr "anomaly observed: %b@."
    (Explorer.observed e program.Programs.is_anomalous)

let main program mode privatization bound max_runs granule =
  match (program, mode) with
  | Some pname, Some mname -> (
      match
        ( List.find_opt (fun p -> p.Programs.name = pname) Programs.all,
          mode_of_string mname )
      with
      | Some p, Ok m ->
          run_one p m bound max_runs granule;
          0
      | None, _ ->
          Fmt.epr "unknown program %s; known: %s@." pname
            (String.concat ", "
               (List.map (fun p -> p.Programs.name) Programs.all));
          2
      | _, Error (`Msg m) ->
          Fmt.epr "%s@." m;
          2)
  | Some pname, None ->
      (match List.find_opt (fun p -> p.Programs.name = pname) Programs.all with
      | Some p ->
          List.iter
            (fun m -> run_one p m bound max_runs granule)
            Modes.all_fig6;
          0
      | None ->
          Fmt.epr "unknown program %s@." pname;
          2)
  | None, _ ->
      if privatization then begin
        let cells =
          Matrix.privatization_row ~preemption_bound:bound ~max_runs ()
        in
        Fmt.pr "%a" Matrix.pp_table cells;
        Fmt.pr "matches expectations: %b@." (Matrix.all_match cells)
      end
      else begin
        let cells = Matrix.fig6 ~preemption_bound:bound ~max_runs () in
        Fmt.pr "%a" Matrix.pp_table cells;
        Fmt.pr "matches the paper's Figure 6: %b@." (Matrix.all_match cells)
      end;
      0

let program_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "p"; "program" ] ~docv:"NAME"
        ~doc:"Litmus program to explore (nr, gir, ilu, slu, glu, mi-ww, idr, sdr, mi-rw, privatization).")

let mode_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:
          "Execution mode: weak-eager, weak-lazy, locks, strong-eager, strong-lazy, quiesce-eager, quiesce-lazy.")

let privatization_arg =
  Arg.(
    value & flag
    & info [ "privatization" ]
        ~doc:"Run the Figure 1 privatization row incl. the quiescence modes.")

let bound_arg =
  Arg.(
    value & opt int 2
    & info [ "bound" ] ~docv:"N" ~doc:"Preemption bound for the explorer.")

let max_runs_arg =
  Arg.(
    value & opt int 6000
    & info [ "max-runs" ] ~docv:"N" ~doc:"Schedule budget per cell.")

let granule_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "granule" ] ~docv:"N"
        ~doc:"Override the versioning granularity (fields per granule).")

let cmd =
  let doc = "systematic exploration of STM weak-atomicity anomalies (PLDI 2007 Figures 1-6)" in
  Cmd.v
    (Cmd.info "stm_anomalies" ~doc)
    Term.(
      const main $ program_arg $ mode_arg $ privatization_arg $ bound_arg
      $ max_runs_arg $ granule_arg)

let () = exit (Cmd.eval' cmd)
