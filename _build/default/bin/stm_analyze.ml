(* CLI: run the whole-program analyses (Section 5) on a Jt source file or
   a built-in benchmark, and report barrier-removal results.

   Examples:
     stm_analyze -b tsp                 # Figure 13 row for tsp
     stm_analyze -b all                 # the whole Figure 13 table
     stm_analyze program.jt --verbose   # per-site decisions for a file
     stm_analyze -b oo7 --dump-ir       # lowered IR with barrier notes *)

open Cmdliner
open Stm_analysis

let builtin name =
  let all =
    Stm_workloads.Jvm98.all
    @ [ Stm_workloads.Tsp.tsp; Stm_workloads.Oo7.oo7; Stm_workloads.Jbb.jbb ]
  in
  List.find_opt (fun (w : Stm_workloads.Workload.t) -> w.name = name) all

let report_verbose prog =
  let pta = Pta.analyze prog in
  Fmt.pr "abstract objects: %d@." (Pta.n_objects pta);
  Fmt.pr "reachable method contexts:@.";
  List.iter
    (fun (k, c) ->
      Fmt.pr "  %-40s %s@." k
        (match c with Pta.Txn -> "in-txn" | Pta.Nontxn -> "not-in-txn"))
    (List.sort compare (Pta.reachable_methods pta));
  Fmt.pr "@.per-site decisions (non-transactional code):@.";
  Pta.iter_sites pta (fun info ->
      if Pta.site_reachable pta Pta.Nontxn info.Pta.site then begin
        let n = Nait.decide pta info in
        let t = Thread_local.decide pta info in
        Fmt.pr "  site %-4d %-24s %-5s nait=%-12s tl=%s@." info.Pta.site
          (info.Pta.meth.Stm_ir.Ir.mcls ^ "::" ^ info.Pta.meth.Stm_ir.Ir.mname)
          (match info.Pta.kind with `Read -> "read" | `Write -> "write")
          (if n.Nait.removable then "remove(" ^ n.Nait.reason ^ ")"
           else "keep")
          (if t.Thread_local.removable then "remove" else "keep")
      end)

let main source bench verbose dump_ir =
  let progs =
    match (source, bench) with
    | Some path, _ ->
        let src = In_channel.with_open_text path In_channel.input_all in
        [ (Filename.basename path, Stm_jtlang.Jt.compile ~name:path src) ]
    | None, Some "all" ->
        List.map
          (fun (w : Stm_workloads.Workload.t) ->
            (w.name, Stm_workloads.Workload.program w))
          (Stm_workloads.Jvm98.all
          @ [ Stm_workloads.Tsp.tsp; Stm_workloads.Oo7.oo7; Stm_workloads.Jbb.jbb ])
    | None, Some b -> (
        match builtin b with
        | Some w -> [ (b, Stm_workloads.Workload.program w) ]
        | None ->
            Fmt.epr "unknown benchmark %s@." b;
            exit 2)
    | None, None ->
        Fmt.epr "give a Jt file or -b BENCH (or -b all)@.";
        exit 2
  in
  List.iter
    (fun (name, prog) ->
      if dump_ir then begin
        ignore (Stm_jit.Opt.optimize Stm_jit.Opt.O2 prog);
        let pta = Pta.analyze prog in
        ignore (Nait.apply prog pta : int);
        Stm_ir.Ir.iter_methods prog (fun m -> Fmt.pr "%a@." Stm_ir.Ir.pp_meth m)
      end
      else begin
        Fmt.pr "%a" Barrier_stats.pp_table (Barrier_stats.count ~name prog);
        if verbose then report_verbose prog
      end)
    progs;
  0

let source_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.jt")

let bench_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "b"; "bench" ] ~docv:"NAME"
        ~doc:"Analyze a built-in benchmark (compress, jess, db, javac, mpegaudio, mtrt, jack, tsp, oo7, jbb, or all).")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Per-site decisions.")

let dump_arg =
  Arg.(value & flag & info [ "dump-ir" ] ~doc:"Dump lowered IR with barrier notes after O2 + NAIT.")

let cmd =
  let doc = "whole-program NAIT / thread-local barrier analysis (PLDI 2007 Section 5)" in
  Cmd.v
    (Cmd.info "stm_analyze" ~doc)
    Term.(const main $ source_arg $ bench_arg $ verbose_arg $ dump_arg)

let () = exit (Cmd.eval' cmd)
