open Stm_runtime

type participant = { pid : int; mutable consistent_at : int }

type t = {
  mutable epoch : int;
  mutable next_pid : int;
  mutable active : participant list;
  mutable next_ticket : int;
  mutable retired_upto : int;  (* all tickets < retired_upto are done *)
}

let create () =
  { epoch = 0; next_pid = 0; active = []; next_ticket = 0; retired_upto = 0 }

let register t =
  let p = { pid = t.next_pid; consistent_at = t.epoch } in
  t.next_pid <- t.next_pid + 1;
  t.active <- p :: t.active;
  p

let deregister t p = t.active <- List.filter (fun q -> q.pid <> p.pid) t.active

let mark_consistent t p = p.consistent_at <- t.epoch

let commit_epoch_wait t me =
  t.epoch <- t.epoch + 1;
  let target = t.epoch in
  let others_ready () =
    List.for_all
      (fun p -> p.pid = me.pid || p.consistent_at >= target)
      t.active
  in
  while not (others_ready ()) do
    (* a fully validated committer is itself consistent at any epoch:
       keep refreshing so concurrent committers never wait on each other *)
    me.consistent_at <- t.epoch;
    Sched.tick 5;
    Sched.yield ()
  done

let take_ticket t =
  let n = t.next_ticket in
  t.next_ticket <- n + 1;
  n

let await_turn t ticket =
  while t.retired_upto < ticket do
    Sched.tick 5;
    Sched.yield ()
  done

let retire_ticket t ticket =
  assert (ticket = t.retired_upto);
  t.retired_upto <- ticket + 1

let epoch t = t.epoch
