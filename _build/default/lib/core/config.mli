(** STM system configuration.

    A configuration picks one point in the design space the paper
    explores: version management (eager McRT-style vs lazy), atomicity
    (weak vs strong), the dynamic-escape-analysis barrier variants, the
    version-management granularity (Section 2.4), and the quiescence
    alternative (Section 3.4). *)

type versioning =
  | Eager  (** in-place updates + undo log (McRT-STM, the paper's base) *)
  | Lazy  (** private write buffer, write-back after commit *)

type conflict_policy =
  | Backoff  (** exponential back-off and retry (the paper's default) *)
  | Raise_error
      (** signal the race by raising {!Conflict.Isolation_violation}
          — the paper's "barriers can aid in debugging" mode *)

(** Contention management between transactions (how open-for-write
    resolves a record owned by another transaction). *)
type txn_conflict_policy =
  | Suicide
      (** back off and, after the retry budget, abort self (the McRT
          default the paper uses) *)
  | Wound_wait
      (** older transaction wounds (kills) a younger owner; younger
          waits for an older owner — deadlock-free by construction *)

type t = {
  versioning : versioning;
  strong : bool;  (** insert non-transactional isolation barriers *)
  strong_reads : bool;
      (** insert read barriers (Figure 16 measures reads only) *)
  strong_writes : bool;
      (** insert write barriers (Figure 17 measures writes only) *)
  dea : bool;  (** dynamic escape analysis: allocate objects private *)
  read_privacy_check : bool;
      (** the optional private-object fast path in the read barrier
          (Figure 10a, italicized instructions) *)
  granule : int;
      (** fields per undo-log / write-buffer granule; 1 = exact field
          granularity, >1 models the coarse-grained versioning of
          Section 2.4 (GLU / GIR anomalies) *)
  detect_nontxn_races : bool;
      (** footnote 2 of Section 3.1: the read barrier can also detect
          conflicts between two non-transactional threads by checking the
          lowest-order bit (a concurrent writer of either kind holds it
          clear); off by default since such races violate no
          transaction's isolation *)
  quiescence : bool;  (** commit-time quiescence (Section 3.4) *)
  conflict : conflict_policy;
  txn_conflict : txn_conflict_policy;
  max_txn_retries : int;
      (** open-for-write back-offs before a transaction aborts itself *)
  validate_every : int;
      (** re-validate the read set every N transactional accesses so that
          doomed transactions cannot run unboundedly on inconsistent
          data *)
  cost : Stm_runtime.Cost.t;
}

val base : t
(** Weakly-atomic eager-versioning McRT-style STM: the paper's starting
    point. Strong atomicity and all optimizations off; field-granular
    versioning; back-off conflict policy. *)

val eager_weak : t
val lazy_weak : t

val eager_strong : t
(** Strong atomicity with no optimizations (the "Strong Atom NoOpts"
    series). *)

val lazy_strong : t

val with_dea : t -> t
(** Enable dynamic escape analysis (+ read privacy check). *)

val with_granule : int -> t -> t
val with_quiescence : t -> t
val with_wound_wait : t -> t
val pp : Format.formatter -> t -> unit
val describe : t -> string
