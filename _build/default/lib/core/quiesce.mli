(** Quiescence mechanism (paper Section 3.4).

    An alternative to non-transactional barriers that restores
    privatization safety (Figures 1 and 4b) without solving the general
    isolation problems — reproducing the paper's discussion.

    - {b Eager versioning}: a committing transaction may complete only
      when every other in-flight transaction has reached a consistent
      state (successfully re-validated, aborted, or finished) {e after}
      the committer bumped the global epoch. A doomed transaction
      re-validates at its next STM operation, fails, and rolls back first
      — so privatizing transactions never race with rollback writes.
    - {b Lazy versioning}: committed transactions apply their write-backs
      strictly in commit order (a ticket lock); a transaction completes
      only when all previously serialized transactions have finished
      flushing, so post-transaction code sees their updates. *)

type t

val create : unit -> t

(** {1 Participant registry} *)

type participant

val register : t -> participant
(** Called at transaction begin. *)

val deregister : t -> participant -> unit
(** Called at commit completion or abort completion. *)

val mark_consistent : t -> participant -> unit
(** Called by a transaction right after a successful validation: records
    that it is consistent as of the current epoch. *)

val commit_epoch_wait : t -> participant -> unit
(** Eager commit protocol: bump the epoch and block (yield-spin) until
    every other registered participant is consistent as of the new epoch
    or has deregistered. *)

(** {1 Ordered write-back (lazy)} *)

val take_ticket : t -> int

val await_turn : t -> int -> unit
(** Block until all earlier tickets have been retired. *)

val retire_ticket : t -> int -> unit

val epoch : t -> int
(** Current global epoch (for tests). *)
