lib/core/config.ml: Buffer Fmt Printf Stm_runtime
