lib/core/conflict.ml: Config Cost Heap Sched Stats Stm_runtime Trace
