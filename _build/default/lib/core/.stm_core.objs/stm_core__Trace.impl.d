lib/core/trace.ml: Fmt Lazy
