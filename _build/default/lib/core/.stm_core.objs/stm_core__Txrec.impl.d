lib/core/txrec.ml: Fmt
