lib/core/stm.mli: Config Heap Sched Stats Stm_runtime
