lib/core/quiesce.ml: List Sched Stm_runtime
