lib/core/txn.ml: Array Atomic Config Conflict Cost Dea Hashtbl Heap List Option Quiesce Sched Stats Stm_runtime Trace Txrec
