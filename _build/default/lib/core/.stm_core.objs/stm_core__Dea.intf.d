lib/core/dea.mli: Stats Stm_runtime
