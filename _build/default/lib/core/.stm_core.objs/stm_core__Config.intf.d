lib/core/config.mli: Format Stm_runtime
