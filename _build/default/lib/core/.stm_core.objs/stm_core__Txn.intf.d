lib/core/txn.mli: Config Heap Quiesce Stats Stm_runtime
