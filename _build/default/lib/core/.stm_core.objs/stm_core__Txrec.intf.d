lib/core/txrec.mli: Format
