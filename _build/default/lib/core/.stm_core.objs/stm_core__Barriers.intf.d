lib/core/barriers.mli: Config Heap Stats Stm_runtime
