lib/core/conflict.mli: Config Stats Stm_runtime
