lib/core/dea.ml: Array Atomic Cost Heap Sched Stats Stm_runtime Trace Txrec
