lib/core/trace.mli: Format Lazy
