lib/core/barriers.ml: Atomic Config Conflict Cost Dea Heap Sched Stats Stm_runtime Txrec
