lib/core/quiesce.mli:
