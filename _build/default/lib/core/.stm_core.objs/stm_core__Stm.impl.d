lib/core/stm.ml: Atomic Barriers Config Conflict Cost Dea Fun Hashtbl Heap List Sched Stats Stm_runtime Txn Txrec
