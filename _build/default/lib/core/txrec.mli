(** Transaction-record word encoding (paper Figure 7).

    Each object carries one pointer-sized transaction record with four
    states encoded in the three least-significant bits:

    {v
    x..x011   Shared               upper bits: version number
    x..xx00   Exclusive            upper bits: owner (transaction id)
    x..x010   Exclusive anonymous  upper bits: version number
    1..1111   Private              all ones
    v}

    The encoding is chosen so that the paper's barrier instruction
    sequences work unchanged:
    - a non-transactional read only tests bit 1 ([test ecx, 2]): the bit is
      set in Shared, Exclusive-anonymous and Private, and clear in
      Exclusive — one test detects conflicts with transactional owners;
    - a non-transactional write acquires Exclusive-anonymous ownership by
      atomically clearing bit 0 (IA32 [lock btr]): Shared[(v)] becomes
      Exclusive-anonymous[(v)], while both exclusive states already have
      bit 0 clear and therefore fail the acquire;
    - releasing adds 9 ([= 8 + 1]): Exclusive-anonymous[(v)] becomes
      Shared[(v+1)] — version increment and state change in one add. *)

type state =
  | Shared of int  (** version *)
  | Exclusive of int  (** owner transaction id *)
  | Exclusive_anon of int  (** version *)
  | Private

val shared : int -> int
(** [shared v] encodes Shared with version [v]. *)

val exclusive : int -> int
(** [exclusive owner] encodes Exclusive for transaction [owner >= 1]. *)

val exclusive_anon : int -> int
val private_word : int

val decode : int -> state

val version : int -> int
(** Version field of a Shared or Exclusive-anonymous word. *)

val owner : int -> int
(** Owner field of an Exclusive word. *)

val is_shared : int -> bool
val is_exclusive : int -> bool
val is_exclusive_anon : int -> bool
val is_private : int -> bool

val readable_bit : int -> bool
(** The read barrier's single-bit test ([w land 2 <> 0]): true when the
    word is Shared, Exclusive-anonymous or Private — i.e. no transactional
    owner holds it exclusively. *)

val btr_acquirable : int -> bool
(** True when a non-transactional write's bit-test-and-reset would succeed
    (bit 0 set): the Shared and Private states. The caller must handle
    Private separately (the paper's write barrier checks [-1] first). *)

val release_delta : int
(** The constant 9 added to an Exclusive-anonymous word to release it:
    restores bit 0 (Shared) and increments the version. *)

val pp : Format.formatter -> int -> unit
