(** Dynamic escape analysis (paper Section 4).

    A freshly allocated object is {e private} (its transaction record is
    the all-ones word) and visible to one thread only; barriers on private
    objects skip all synchronization. An object is {e published} — made
    public, permanently — when a reference to it is written into a public
    object or a static field. Publication runs the [publishObject]
    algorithm of Figure 11: the whole graph of private objects reachable
    from the published root is marked public with an explicit mark stack,
    in the same way a stop-the-world collector traverses the heap. *)

val is_private : Stm_runtime.Heap.obj -> bool

val publish : Stats.t -> Stm_runtime.Cost.t -> Stm_runtime.Heap.obj -> unit
(** Mark the object and every private object reachable from it public.
    Idempotent; termination follows the paper's argument (each step
    strictly decreases the number of reachable private objects; public
    objects stop the traversal). *)

val publish_value : Stats.t -> Stm_runtime.Cost.t -> Stm_runtime.Heap.value -> unit
(** Publish the referenced object if the value is a reference to a private
    object; no-op otherwise. This is the check the write barrier performs
    on reference-type stores (Figure 10b, asterisked instructions). *)
