(** Event tracing hooks for the STM.

    A single optional sink receives coarse-grained STM events (transaction
    lifecycle, conflicts, publications, quiescence waits). With no sink
    installed the emit path is a branch on [None] — cheap enough to leave
    compiled into the hot paths. The [stm_run --trace] CLI and debugging
    sessions install a printing sink; tests install collecting sinks. *)

type event =
  | Txn_begin of { txid : int; tid : int }
  | Txn_commit of { txid : int; tid : int; reads : int; writes : int }
  | Txn_abort of { txid : int; tid : int; wounded : bool }
  | Txn_wound of { victim : int; by : int }
  | Conflict of { tid : int; oid : int; cls : string; writer : bool }
  | Publish of { oid : int; cls : string }
  | Quiesce_wait of { txid : int }

val set_sink : (event -> unit) option -> unit
(** Install (or remove) the global sink. *)

val emit : event Lazy.t -> unit
(** Deliver the event to the sink if one is installed; the payload is
    lazy so that argument construction costs nothing when tracing is
    off. *)

val enabled : unit -> bool

val pp_event : Format.formatter -> event -> unit
(** Render one event (used by the CLI's printing sink). *)
