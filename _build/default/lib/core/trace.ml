type event =
  | Txn_begin of { txid : int; tid : int }
  | Txn_commit of { txid : int; tid : int; reads : int; writes : int }
  | Txn_abort of { txid : int; tid : int; wounded : bool }
  | Txn_wound of { victim : int; by : int }
  | Conflict of { tid : int; oid : int; cls : string; writer : bool }
  | Publish of { oid : int; cls : string }
  | Quiesce_wait of { txid : int }

let sink : (event -> unit) option ref = ref None

let set_sink s = sink := s

let emit ev = match !sink with Some f -> f (Lazy.force ev) | None -> ()

let enabled () = !sink <> None

let pp_event ppf = function
  | Txn_begin { txid; tid } -> Fmt.pf ppf "txn %d begin (thread %d)" txid tid
  | Txn_commit { txid; tid; reads; writes } ->
      Fmt.pf ppf "txn %d commit (thread %d, %d reads, %d writes)" txid tid
        reads writes
  | Txn_abort { txid; tid; wounded } ->
      Fmt.pf ppf "txn %d abort (thread %d%s)" txid tid
        (if wounded then ", wounded" else "")
  | Txn_wound { victim; by } -> Fmt.pf ppf "txn %d wounded by txn %d" victim by
  | Conflict { tid; oid; cls; writer } ->
      Fmt.pf ppf "thread %d %s-conflict on %s@%d" tid
        (if writer then "write" else "read")
        cls oid
  | Publish { oid; cls } -> Fmt.pf ppf "published %s@%d" cls oid
  | Quiesce_wait { txid } -> Fmt.pf ppf "txn %d quiescing" txid
