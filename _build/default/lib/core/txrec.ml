type state =
  | Shared of int
  | Exclusive of int
  | Exclusive_anon of int
  | Private

let shared v = (v lsl 3) lor 0b011

let exclusive owner =
  assert (owner >= 1);
  owner lsl 3

let exclusive_anon v = (v lsl 3) lor 0b010
let private_word = -1

let is_private w = w = private_word
let is_shared w = (not (is_private w)) && w land 0b111 = 0b011
let is_exclusive w = w land 0b011 = 0b000
let is_exclusive_anon w = w land 0b111 = 0b010

let version w = w lsr 3
let owner w = w lsr 3

let decode w =
  if is_private w then Private
  else if is_exclusive w then Exclusive (owner w)
  else if is_exclusive_anon w then Exclusive_anon (version w)
  else Shared (version w)

let readable_bit w = w land 2 <> 0
let btr_acquirable w = w land 1 <> 0
let release_delta = 9

let pp ppf w =
  match decode w with
  | Shared v -> Fmt.pf ppf "Shared(v=%d)" v
  | Exclusive o -> Fmt.pf ppf "Exclusive(txn=%d)" o
  | Exclusive_anon v -> Fmt.pf ppf "ExclAnon(v=%d)" v
  | Private -> Fmt.string ppf "Private"
