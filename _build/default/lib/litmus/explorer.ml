open Stm_runtime

type exploration = {
  outcomes : (string * int) list;
  runs : int;
  truncated : bool;
  livelocks : int;
  deadlocks : int;
}

type instance = { main : unit -> unit; observe : unit -> string }

(* One scheduling decision observed during a run. *)
type decision = {
  chosen : Sched.tid;
  alts : Sched.tid list;  (* runnable alternatives not chosen *)
}

type state = {
  mutable outcome_tbl : (string, int) Hashtbl.t;
  mutable runs : int;
  mutable livelocks : int;
  mutable deadlocks : int;
  max_runs : int;
  mutable truncated : bool;
}

exception Search_done

(* Execute one schedule. [prefix] forces the first choices; afterwards the
   default policy applies (stay on the current thread, rotate after the
   fairness window). Returns the decision trace and the outcome string. *)
let execute st ~max_steps ~fairness_window ~cfg ~make prefix =
  if st.runs >= st.max_runs then begin
    st.truncated <- true;
    raise Search_done
  end;
  st.runs <- st.runs + 1;
  let inst = make () in
  let trace = ref [] in
  let ndecisions = ref 0 in
  let consecutive = ref 0 in
  let last_default = ref (-1) in
  let choose current runnables =
    let i = !ndecisions in
    incr ndecisions;
    let default =
      if List.mem current runnables then
        if !last_default = current && !consecutive >= fairness_window then
          (* rotate: next runnable after current, wrapping *)
          match List.filter (fun t -> t > current) runnables with
          | t :: _ -> t
          | [] -> List.hd runnables
        else current
      else List.hd runnables
    in
    let chosen =
      if i < Array.length prefix then prefix.(i) else default
    in
    (* keep fairness bookkeeping against actually-chosen thread *)
    if chosen = !last_default then incr consecutive
    else begin
      last_default := chosen;
      consecutive := 1
    end;
    let alts = List.filter (fun t -> t <> chosen) runnables in
    trace := { chosen; alts } :: !trace;
    chosen
  in
  let result =
    Stm_core.Stm.run ~policy:(Sched.Controlled choose) ~max_steps ~cfg
      inst.main
  in
  let sched_result = fst result in
  let outcome =
    match sched_result.Sched.status with
    | Sched.Completed -> (
        match sched_result.Sched.exns with
        | [] -> inst.observe ()
        | (_, ex) :: _ -> "<exn:" ^ Printexc.to_string ex ^ ">")
    | Sched.Deadlock _ -> "<deadlock>"
    | Sched.Fuel_exhausted -> "<livelock>"
  in
  (match sched_result.Sched.status with
  | Sched.Deadlock _ -> st.deadlocks <- st.deadlocks + 1
  | Sched.Fuel_exhausted -> st.livelocks <- st.livelocks + 1
  | Sched.Completed -> ());
  let tbl = st.outcome_tbl in
  Hashtbl.replace tbl outcome (1 + Option.value ~default:0 (Hashtbl.find_opt tbl outcome));
  (Array.of_list (List.rev !trace), outcome)

let explore ?(preemption_bound = 2) ?(max_runs = 40_000) ?(max_steps = 60_000)
    ?(fairness_window = 64) ?stop_when ~cfg ~make () =
  let st =
    {
      outcome_tbl = Hashtbl.create 16;
      runs = 0;
      livelocks = 0;
      deadlocks = 0;
      max_runs;
      truncated = false;
    }
  in
  let execute prefix =
    let trace, outcome = execute st ~max_steps ~fairness_window ~cfg ~make prefix in
    (match stop_when with
    | Some pred when pred outcome -> raise Search_done
    | Some _ | None -> ());
    (trace, outcome)
  in
  (* DFS over the scheduling tree. [prefix] replays forced choices;
     [npre] counts injected (non-default) choices in the prefix. *)
  let rec dfs prefix npre =
    let trace, _outcome = execute prefix in
    if npre < preemption_bound then
      let start = Array.length prefix in
      for i = start to Array.length trace - 1 do
        List.iter
          (fun alt ->
            let prefix' = Array.make (i + 1) 0 in
            Array.blit (Array.map (fun d -> d.chosen) trace) 0 prefix' 0 i;
            prefix'.(i) <- alt;
            dfs prefix' (npre + 1))
          trace.(i).alts
      done
  in
  (try dfs [||] 0 with Search_done -> ());
  let outcomes =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.outcome_tbl []
    |> List.sort compare
  in
  {
    outcomes;
    runs = st.runs;
    truncated = st.truncated;
    livelocks = st.livelocks;
    deadlocks = st.deadlocks;
  }

let observed e pred = List.exists (fun (o, _) -> pred o) e.outcomes

(* ------------------------------------------------------------------ *)
(* Probabilistic concurrency testing                                   *)
(* ------------------------------------------------------------------ *)

let explore_pct ?(runs = 2000) ?(depth = 3) ?(max_steps = 60_000) ?(seed = 1)
    ?stop_when ~cfg ~make () =
  let rng = Stm_runtime.Det_rng.create seed in
  let outcome_tbl = Hashtbl.create 16 in
  let livelocks = ref 0 in
  let deadlocks = ref 0 in
  let performed = ref 0 in
  let stopped = ref false in
  (let max_threads = 16 in
   (* adaptive horizon: change points are sampled within the length of
      the runs actually observed, so demotions land inside the program *)
   let horizon = ref 256 in
   let run_once () =
     incr performed;
     let inst = make () in
     (* random distinct base priorities per thread; higher runs first *)
     let prio = Array.init max_threads (fun i -> 100 + ((i * 7919) mod 97)) in
     Array.iteri
       (fun i _ ->
         let j = i + Stm_runtime.Det_rng.int rng (max_threads - i) in
         let t = prio.(i) in
         prio.(i) <- prio.(j);
         prio.(j) <- t)
       prio;
     (* choose depth-1 demotion points over the adaptive horizon *)
     let change_points =
       List.init (max 0 (depth - 1)) (fun i ->
           (1 + Stm_runtime.Det_rng.int rng !horizon, i + 1))
     in
     let step = ref 0 in
     let last = ref (-1) in
     let streak = ref 0 in
     let floor_prio = ref (-1000) in
     let choose current runnables =
       incr step;
       (match List.assoc_opt !step change_points with
       | Some demotion when current < max_threads ->
           (* demote the running thread below everything else *)
           prio.(current) <- -demotion
       | _ -> ());
       let pick =
         List.fold_left
           (fun best t ->
             let p tid = if tid < max_threads then prio.(tid) else 0 in
             if p t > p best then t else best)
           (List.hd runnables) runnables
       in
       (* livelock avoidance (deviation from pure PCT): a thread that
          spins through many consecutive steps while others are runnable
          is waiting on a lower-priority thread - demote it so the owner
          can make progress *)
       if pick = !last then incr streak else streak := 1;
       last := pick;
       if !streak > 64 && List.length runnables > 1 && pick < max_threads
       then begin
         decr floor_prio;
         prio.(pick) <- !floor_prio;
         streak := 0
       end;
       pick
     in
     let result, _ =
       Stm_core.Stm.run
         ~policy:(Stm_runtime.Sched.Controlled choose)
         ~max_steps ~cfg inst.main
     in
     let outcome =
       match result.Stm_runtime.Sched.status with
       | Stm_runtime.Sched.Completed -> (
           match result.Stm_runtime.Sched.exns with
           | [] -> inst.observe ()
           | (_, ex) :: _ -> "<exn:" ^ Printexc.to_string ex ^ ">")
       | Stm_runtime.Sched.Deadlock _ ->
           incr deadlocks;
           "<deadlock>"
       | Stm_runtime.Sched.Fuel_exhausted ->
           incr livelocks;
           "<livelock>"
     in
     Hashtbl.replace outcome_tbl outcome
       (1 + Option.value ~default:0 (Hashtbl.find_opt outcome_tbl outcome));
     (* steady-state estimate of the run length in scheduling steps *)
     if result.Stm_runtime.Sched.status = Stm_runtime.Sched.Completed then
       horizon := max 32 (min !step 4096);
     outcome
   in
   try
     for _ = 1 to runs do
       let o = run_once () in
       match stop_when with
       | Some pred when pred o ->
           stopped := true;
           raise Exit
       | _ -> ()
     done
   with Exit -> ());
  {
    outcomes =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) outcome_tbl []
      |> List.sort compare;
    runs = !performed;
    truncated = (not !stopped) && !performed >= runs;
    livelocks = !livelocks;
    deadlocks = !deadlocks;
  }
