lib/litmus/matrix.mli: Format Modes Programs
