lib/litmus/explorer.mli: Stm_core
