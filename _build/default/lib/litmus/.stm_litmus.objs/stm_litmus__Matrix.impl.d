lib/litmus/matrix.ml: Explorer Fmt List Modes Option Programs Stm_core
