lib/litmus/programs.mli: Explorer Modes
