lib/litmus/modes.mli: Config Stm_core
