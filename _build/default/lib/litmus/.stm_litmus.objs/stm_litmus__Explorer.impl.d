lib/litmus/explorer.ml: Array Hashtbl List Option Printexc Sched Stm_core Stm_runtime
