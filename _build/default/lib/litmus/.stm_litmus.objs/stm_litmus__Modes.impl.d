lib/litmus/modes.ml: Config Cost Sim_mutex Stm Stm_core Stm_runtime Txn
