lib/litmus/programs.ml: Explorer Heap Modes Option Printf Scanf Sched Stm Stm_core Stm_runtime
