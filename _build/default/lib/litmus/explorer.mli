(** Systematic concurrency testing for the litmus programs of Figures 1-5.

    Stateless model checking in the style of CHESS: each execution is
    driven by a {!Stm_runtime.Sched.Controlled} policy; the explorer
    re-executes the program with different schedule prefixes, enumerating
    the scheduling tree depth-first with a {e preemption bound} — only
    schedules with at most [preemption_bound] scheduler choices that
    deviate from the default are explored. Every anomaly in the paper
    needs at most three preemptions at specific points, so a small bound
    finds them all, while keeping the search tractable.

    The default schedule continues the current thread while it is
    runnable, rotating round-robin after a fairness window so that spin
    loops (barrier back-off, quiescence waits) cannot livelock the default
    execution. Rotations do not count against the preemption bound. *)

type exploration = {
  outcomes : (string * int) list;
      (** distinct observed outcomes with the number of schedules that
          produced each, sorted by outcome string *)
  runs : int;  (** number of executions performed *)
  truncated : bool;  (** true if [max_runs] stopped the search *)
  livelocks : int;  (** executions that ran out of scheduler fuel *)
  deadlocks : int;
}

type instance = {
  main : unit -> unit;  (** body executed as simulated thread 0 *)
  observe : unit -> string;  (** read the final state, after the run *)
}

val explore :
  ?preemption_bound:int ->
  ?max_runs:int ->
  ?max_steps:int ->
  ?fairness_window:int ->
  ?stop_when:(string -> bool) ->
  cfg:Stm_core.Config.t ->
  make:(unit -> instance) ->
  unit ->
  exploration
(** [explore ~cfg ~make ()] repeatedly calls [make] to get a fresh
    instance and runs it under systematically varied schedules.
    Defaults: [preemption_bound = 2], [max_runs = 40_000],
    [max_steps = 60_000], [fairness_window = 64]. If [stop_when] is given,
    the search stops as soon as a matching outcome is observed (used for
    "anomaly possible?" queries, where one witness suffices). *)

val observed : exploration -> (string -> bool) -> bool
(** Did any schedule produce an outcome satisfying the predicate? *)

val explore_pct :
  ?runs:int ->
  ?depth:int ->
  ?max_steps:int ->
  ?seed:int ->
  ?stop_when:(string -> bool) ->
  cfg:Stm_core.Config.t ->
  make:(unit -> instance) ->
  unit ->
  exploration
(** Probabilistic concurrency testing (Burckhardt et al., ASPLOS 2010):
    each run assigns random priorities to threads and demotes the running
    thread's priority at [depth - 1] randomly chosen scheduling steps; the
    scheduler otherwise always runs the highest-priority runnable thread.
    For a bug of depth [d] (number of ordering constraints), each run
    finds it with probability at least [1/(n * k^(d-1))] — an independent
    method of deciding the Figure 6 cells, complementing the
    preemption-bounded DFS. Defaults: [runs = 2000], [depth = 3],
    [seed = 1]. *)
