open Stm_ir

type ctx = Txn | Nontxn

module ISet = Set.Make (Int)

type aid = int

type site_info = {
  site : int;
  meth : Ir.meth;
  kind : [ `Read | `Write ];
  array : bool;
  clinit_own : bool;
}

type origin =
  | Alloc of { site : int; hctx : ctx; cls : string; in_meth : string }
  | Statics of string

type t = {
  prog : Ir.program;
  mutable naids : int;
  alloc_tbl : (int * ctx, aid) Hashtbl.t;
  statics_tbl : (string, aid) Hashtbl.t;
  origins : (aid, origin) Hashtbl.t;
  (* variable points-to: (method key, ctx, reg) *)
  vpts : (string * ctx * int, ISet.t) Hashtbl.t;
  (* field points-to: (aid, field name) *)
  fpts : (aid * string, ISet.t) Hashtbl.t;
  retpts : (string * ctx, ISet.t) Hashtbl.t;
  reach : (string * ctx, Ir.meth) Hashtbl.t;
  in_atomic : (string, bool array) Hashtbl.t;
  mutable changed : bool;
  (* recording pass output *)
  site_pts : (int * ctx, ISet.t) Hashtbl.t;
  site_reach : (int * ctx, unit) Hashtbl.t;
  site_infos : (int, site_info) Hashtbl.t;
  mutable read_txn : ISet.t;
  mutable written_txn : ISet.t;
  mutable shared : ISet.t;
}

let mkey (m : Ir.meth) = m.Ir.mcls ^ "::" ^ m.Ir.mname

let get_set tbl key =
  match Hashtbl.find_opt tbl key with Some s -> s | None -> ISet.empty

let add_set t tbl key objs =
  if not (ISet.is_empty objs) then begin
    let old = get_set tbl key in
    let nw = ISet.union old objs in
    if not (ISet.equal old nw) then begin
      Hashtbl.replace tbl key nw;
      t.changed <- true
    end
  end

let alloc_aid t site ctx cls ~in_meth =
  match Hashtbl.find_opt t.alloc_tbl (site, ctx) with
  | Some a -> a
  | None ->
      let a = t.naids in
      t.naids <- a + 1;
      Hashtbl.replace t.alloc_tbl (site, ctx) a;
      Hashtbl.replace t.origins a (Alloc { site; hctx = ctx; cls; in_meth });
      a

let statics_aid t cls =
  match Hashtbl.find_opt t.statics_tbl cls with
  | Some a -> a
  | None ->
      let a = t.naids in
      t.naids <- a + 1;
      Hashtbl.replace t.statics_tbl cls a;
      Hashtbl.replace t.origins a (Statics cls);
      a

let aid_class t a =
  match Hashtbl.find t.origins a with
  | Alloc { cls; _ } -> cls
  | Statics cls -> "<statics:" ^ cls ^ ">"

let aid_heap_ctx t a =
  match Hashtbl.find t.origins a with
  | Alloc { hctx; _ } -> hctx
  | Statics _ -> Nontxn

let aid_is_statics t a =
  match Hashtbl.find t.origins a with Statics _ -> true | Alloc _ -> false

let n_objects t = t.naids

(* Lexical atomic nesting per instruction. *)
let compute_in_atomic (m : Ir.meth) =
  let n = Array.length m.Ir.body in
  let res = Array.make n false in
  let depth = ref 0 in
  for pc = 0 to n - 1 do
    (match m.Ir.body.(pc) with
    | Ir.AtomicBegin _ ->
        res.(pc) <- !depth > 0;
        incr depth
    | Ir.AtomicEnd ->
        decr depth;
        res.(pc) <- !depth > 0
    | _ -> res.(pc) <- !depth > 0)
  done;
  res

let in_atomic t (m : Ir.meth) =
  let key = mkey m in
  match Hashtbl.find_opt t.in_atomic key with
  | Some a -> a
  | None ->
      let a = compute_in_atomic m in
      Hashtbl.replace t.in_atomic key a;
      a

let mark_reachable t m ctx =
  let key = (mkey m, ctx) in
  if not (Hashtbl.mem t.reach key) then begin
    Hashtbl.replace t.reach key m;
    t.changed <- true
  end

let operand_pts t key ctx = function
  | Ir.Reg r -> get_set t.vpts (key, ctx, r)
  | Ir.Cint _ | Ir.Cbool _ | Ir.Cstr _ | Ir.Cnull -> ISet.empty

(* Transfer for one instruction. When [record] is set, fill the per-site
   tables and the accessed-in-transaction bits instead of propagating. *)
let process_instr t (m : Ir.meth) mctx pc ins ~record =
  let key = mkey m in
  let eff : ctx = if mctx = Txn || (in_atomic t m).(pc) then Txn else Nontxn in
  let pts op = operand_pts t key mctx op in
  let vset r objs = add_set t t.vpts (key, mctx, r) objs in
  let is_clinit_own cls =
    String.equal m.Ir.mname "clinit" && String.equal m.Ir.mcls cls
  in
  (* Class-initialization semantics (Section 5.3): while C.clinit runs, no
     other thread can reach C's statics, nor objects allocated inside the
     initializer (they are only reachable through those statics). Accesses
     in clinit whose targets are all such objects need not count. *)
  let clinit_local objs =
    String.equal m.Ir.mname "clinit"
    && (not (ISet.is_empty objs))
    && ISet.for_all
         (fun a ->
           match Hashtbl.find t.origins a with
           | Statics cls -> String.equal cls m.Ir.mcls
           | Alloc { in_meth; _ } -> String.equal in_meth key)
         objs
  in
  let record_site (note : Ir.note) kind ~array ~objs ~clinit_own =
    Hashtbl.replace t.site_reach (note.Ir.site, eff) ();
    let old = get_set t.site_pts (note.Ir.site, eff) in
    Hashtbl.replace t.site_pts (note.Ir.site, eff) (ISet.union old objs);
    if not (Hashtbl.mem t.site_infos note.Ir.site) then
      Hashtbl.replace t.site_infos note.Ir.site
        { site = note.Ir.site; meth = m; kind; array; clinit_own };
    if eff = Txn && not clinit_own then
      match kind with
      | `Read -> t.read_txn <- ISet.union t.read_txn objs
      | `Write -> t.written_txn <- ISet.union t.written_txn objs
  in
  match ins with
  | Ir.Move (d, s) -> vset d (pts s)
  | Ir.New { dst; cls; site } ->
      vset dst (ISet.singleton (alloc_aid t site eff cls ~in_meth:key))
  | Ir.NewArr { dst; site; _ } ->
      vset dst (ISet.singleton (alloc_aid t site eff "<array>" ~in_meth:key))
  | Ir.Load { dst; obj; fld; note; _ } ->
      let objs = pts obj in
      if record then
        record_site note `Read ~array:false ~objs
          ~clinit_own:(clinit_local objs)
      else
        ISet.iter (fun o -> vset dst (get_set t.fpts (o, fld))) objs
  | Ir.Store { obj; fld; src; note; _ } ->
      let objs = pts obj in
      if record then
        record_site note `Write ~array:false ~objs
          ~clinit_own:(clinit_local objs)
      else
        ISet.iter (fun o -> add_set t t.fpts (o, fld) (pts src)) objs
  | Ir.LoadS { dst; cls; fld; note; _ } ->
      let o = statics_aid t cls in
      if record then
        record_site note `Read ~array:false ~objs:(ISet.singleton o)
          ~clinit_own:(is_clinit_own cls)
      else vset dst (get_set t.fpts (o, fld))
  | Ir.StoreS { cls; fld; src; note; _ } ->
      let o = statics_aid t cls in
      if record then
        record_site note `Write ~array:false ~objs:(ISet.singleton o)
          ~clinit_own:(is_clinit_own cls)
      else add_set t t.fpts (o, fld) (pts src)
  | Ir.ALoad { dst; arr; note; _ } ->
      let objs = pts arr in
      if record then
        record_site note `Read ~array:true ~objs
          ~clinit_own:(clinit_local objs)
      else ISet.iter (fun o -> vset dst (get_set t.fpts (o, "[]"))) objs
  | Ir.AStore { arr; src; note; _ } ->
      let objs = pts arr in
      if record then
        record_site note `Write ~array:true ~objs
          ~clinit_own:(clinit_local objs)
      else ISet.iter (fun o -> add_set t t.fpts (o, "[]") (pts src)) objs
  | Ir.Call { dst; target; this; args; _ } when not record ->
      let bind (callee : Ir.meth) receiver =
        let cctx = eff in
        mark_reachable t callee cctx;
        let ckey = mkey callee in
        let base =
          match receiver with
          | Some objs ->
              add_set t t.vpts (ckey, cctx, 0) objs;
              1
          | None -> 0
        in
        List.iteri
          (fun i a -> add_set t t.vpts (ckey, cctx, base + i) (pts a))
          args;
        match dst with
        | Some d -> vset d (get_set t.retpts (ckey, cctx))
        | None -> ()
      in
      (match target with
      | Ir.Static (c, mn) -> (
          match Ir.find_method t.prog c mn with
          | Some callee -> bind callee None
          | None -> ())
      | Ir.Virtual (_, mn) ->
          let robjs = pts (Option.get this) in
          (* dispatch per receiver class *)
          let by_target = Hashtbl.create 4 in
          ISet.iter
            (fun o ->
              match Ir.find_method t.prog (aid_class t o) mn with
              | Some callee ->
                  let k = mkey callee in
                  let cur =
                    Option.value ~default:(callee, ISet.empty)
                      (Hashtbl.find_opt by_target k)
                  in
                  Hashtbl.replace by_target k
                    (callee, ISet.add o (snd cur))
              | None -> ())
            robjs;
          Hashtbl.iter (fun _ (callee, objs) -> bind callee (Some objs)) by_target)
  | Ir.Builtin { name = "spawn"; args = [ a ]; _ } when not record ->
      let robjs = pts a in
      ISet.iter
        (fun o ->
          match Ir.find_method t.prog (aid_class t o) "run" with
          | Some callee ->
              mark_reachable t callee Nontxn;
              add_set t t.vpts (mkey callee, Nontxn, 0) (ISet.singleton o)
          | None -> ())
        robjs
  | Ir.Ret (Some v) when not record -> add_set t t.retpts (key, mctx) (pts v)
  | Ir.Call _ | Ir.Builtin _ | Ir.Ret _ | Ir.Nop | Ir.Unop _ | Ir.Binop _
  | Ir.ALen _ | Ir.If _ | Ir.Goto _ | Ir.AtomicBegin _ | Ir.AtomicEnd
  | Ir.MonitorEnter _ | Ir.MonitorExit _ | Ir.Print _ | Ir.Retry ->
      ()

let process_method t m ctx ~record =
  Array.iteri (fun pc ins -> process_instr t m ctx pc ins ~record) m.Ir.body

(* Thread-shared closure: everything reachable through field edges from
   statics holders and thread objects. *)
let compute_shared t =
  let roots = ref ISet.empty in
  Hashtbl.iter (fun _ a -> roots := ISet.add a !roots) t.statics_tbl;
  Hashtbl.iter
    (fun a origin ->
      match origin with
      | Alloc { cls; _ }
        when Hashtbl.mem t.prog.Ir.classes cls && Ir.is_thread_class t.prog cls
        ->
          roots := ISet.add a !roots
      | Alloc _ | Statics _ -> ())
    t.origins;
  let visited = ref ISet.empty in
  let rec visit a =
    if not (ISet.mem a !visited) then begin
      visited := ISet.add a !visited;
      Hashtbl.iter
        (fun (o, _) objs -> if o = a then ISet.iter visit objs)
        t.fpts
    end
  in
  ISet.iter visit !roots;
  t.shared <- !visited

let analyze prog =
  let t =
    {
      prog;
      naids = 0;
      alloc_tbl = Hashtbl.create 64;
      statics_tbl = Hashtbl.create 16;
      origins = Hashtbl.create 64;
      vpts = Hashtbl.create 256;
      fpts = Hashtbl.create 256;
      retpts = Hashtbl.create 32;
      reach = Hashtbl.create 32;
      in_atomic = Hashtbl.create 32;
      changed = true;
      site_pts = Hashtbl.create 256;
      site_reach = Hashtbl.create 256;
      site_infos = Hashtbl.create 256;
      read_txn = ISet.empty;
      written_txn = ISet.empty;
      shared = ISet.empty;
    }
  in
  (match Ir.find_method prog prog.Ir.main_class "main" with
  | Some m -> Hashtbl.replace t.reach (mkey m, Nontxn) m
  | None -> invalid_arg "Pta.analyze: no main method");
  (* class initializers are entry points: the first use of a class may be
     anywhere, including inside a transaction (paper Section 5.3), so
     analyze every clinit in both contexts *)
  Hashtbl.iter
    (fun cname _ ->
      match Ir.find_method prog cname "clinit" with
      | Some m when m.Ir.m_static && m.Ir.params = [] && m.Ir.mcls = cname ->
          Hashtbl.replace t.reach (mkey m, Nontxn) m;
          Hashtbl.replace t.reach (mkey m, Txn) m
      | Some _ | None -> ())
    prog.Ir.classes;
  (* ensure statics objects exist even if only accessed via fields *)
  Hashtbl.iter
    (fun cname _ ->
      if Ir.static_fields prog cname <> [] then ignore (statics_aid t cname))
    prog.Ir.classes;
  while t.changed do
    t.changed <- false;
    (* iterate over a snapshot: reach grows during the pass *)
    let work = Hashtbl.fold (fun (_, c) m acc -> (m, c) :: acc) t.reach [] in
    List.iter (fun (m, c) -> process_method t m c ~record:false) work
  done;
  (* recording pass *)
  Hashtbl.iter (fun (_, c) m -> process_method t m c ~record:true) t.reach;
  compute_shared t;
  t

let site_reachable t ctx site = Hashtbl.mem t.site_reach (site, ctx)
let site_objs t ctx site = get_set t.site_pts (site, ctx)
let iter_sites t f = Hashtbl.iter (fun _ info -> f info) t.site_infos
let read_in_txn t a = ISet.mem a t.read_txn
let written_in_txn t a = ISet.mem a t.written_txn
let thread_shared t a = ISet.mem a t.shared

let reachable_methods t =
  Hashtbl.fold (fun (k, c) _ acc -> (k, c) :: acc) t.reach []
