(** Static barrier-removal counting — regenerates Figure 13.

    For each benchmark program, counts the non-transactional read and
    write barriers in reachable code (excluding, as the paper does,
    unreachable methods and clinit accesses to the class's own statics)
    and how many are removed by NAIT but not TL, by TL but not NAIT, and
    by the two combined. *)

type row = {
  program : string;
  kind : [ `Read | `Write ];
  total : int;  (** barriers in reachable non-transactional code *)
  nait_only : int;  (** removed by NAIT but not TL *)
  tl_only : int;  (** removed by TL but not NAIT *)
  combined : int;  (** removed by TL + NAIT together *)
}

val count : name:string -> Stm_ir.Ir.program -> row list
(** Analyze the program and return its read row and write row. *)

val pp_table : Format.formatter -> row list -> unit
(** Figure 13-shaped table. *)
