(** Static not-accessed-in-transaction analysis (paper Section 5,
    Figure 12).

    Decision rule, per non-transactional access site (using the
    not-in-transaction points-to set):
    - a {e load} needs no barrier if no object it may access is written
      inside any transaction;
    - a {e store} needs no barrier if no object it may access is read or
      written inside any transaction;
    - accesses to a class's own statics inside its [clinit] need no
      barrier (class-initialization semantics).

    Our conflict detection is object-granular, so the
    accessed-in-transaction facts are tracked per abstract object —
    automatically accounting for the versioning-granularity caveat of
    Section 2.4. *)

type decision = { removable : bool; reason : string }

val decide : Pta.t -> Pta.site_info -> decision
(** Decision for one access site. Sites unreachable as non-transactional
    code are trivially removable with reason ["unreachable"]. *)

val apply : Stm_ir.Ir.program -> Pta.t -> int
(** Rewrite [Bar_auto] notes to [Bar_removed "nait"] for every removable
    site. Returns the number of barriers removed. Leaves notes already
    rewritten by other passes untouched. *)

val apply_txn_reads : Stm_ir.Ir.program -> Pta.t -> int
(** The Section 5.2 extension: mark transactional reads whose
    in-transaction points-to set contains no object written in any
    transaction as needing no open-for-read barrier (no version logging,
    no validation entry). The paper notes this is sound under weak
    atomicity only — a non-transactional writer could otherwise slip past
    commit-time validation — and the interpreter honours the mark only in
    weak configurations. Returns the number of sites marked. *)
