lib/analysis/thread_local.ml: Hashtbl Ir Pta Stm_ir
