lib/analysis/nait.mli: Pta Stm_ir
