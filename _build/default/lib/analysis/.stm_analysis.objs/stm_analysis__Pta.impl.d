lib/analysis/pta.ml: Array Hashtbl Int Ir List Option Set Stm_ir String
