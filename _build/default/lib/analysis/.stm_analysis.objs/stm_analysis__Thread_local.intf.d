lib/analysis/thread_local.mli: Pta Stm_ir
