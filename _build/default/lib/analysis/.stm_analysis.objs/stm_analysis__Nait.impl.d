lib/analysis/nait.ml: Hashtbl Ir Pta Stm_ir
