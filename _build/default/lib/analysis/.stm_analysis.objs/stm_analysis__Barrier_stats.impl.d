lib/analysis/barrier_stats.ml: Fmt Hashtbl List Nait Option Pta Thread_local
