lib/analysis/barrier_stats.mli: Format Stm_ir
