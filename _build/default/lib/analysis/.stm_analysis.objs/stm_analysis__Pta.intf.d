lib/analysis/pta.mli: Set Stm_ir
