open Stm_ir

type decision = { removable : bool; reason : string }

let decide pta (info : Pta.site_info) =
  if not (Pta.site_reachable pta Pta.Nontxn info.Pta.site) then
    { removable = true; reason = "unreachable" }
  else begin
    let objs = Pta.site_objs pta Pta.Nontxn info.Pta.site in
    let shared = Pta.ISet.exists (fun o -> Pta.thread_shared pta o) objs in
    if shared then { removable = false; reason = "shared" }
    else { removable = true; reason = "tl" }
  end

let apply prog pta =
  let removed = ref 0 in
  let decisions = Hashtbl.create 256 in
  Pta.iter_sites pta (fun info ->
      Hashtbl.replace decisions info.Pta.site (decide pta info));
  Ir.iter_methods prog (fun m ->
      Ir.iter_access_notes m (fun _ note ->
          match (note.Ir.barrier, Hashtbl.find_opt decisions note.Ir.site) with
          | Ir.Bar_auto, Some { removable = true; reason } ->
              note.Ir.barrier <- Ir.Bar_removed reason;
              incr removed
          | _ -> ()));
  !removed
