type row = {
  program : string;
  kind : [ `Read | `Write ];
  total : int;
  nait_only : int;
  tl_only : int;
  combined : int;
}

let count ~name prog =
  let pta = Pta.analyze prog in
  let totals = Hashtbl.create 2 in
  let bump key = Hashtbl.replace totals key (1 + Option.value ~default:0 (Hashtbl.find_opt totals key)) in
  Pta.iter_sites pta (fun info ->
      (* count only reachable non-transactional code; skip the
         clinit-own-statics accesses (removal there is trivially sound) *)
      if Pta.site_reachable pta Pta.Nontxn info.Pta.site
         && not info.Pta.clinit_own
      then begin
        let n = Nait.decide pta info in
        let t = Thread_local.decide pta info in
        bump (info.Pta.kind, `Total);
        if n.Nait.removable && not t.Thread_local.removable then
          bump (info.Pta.kind, `Nait_only);
        if t.Thread_local.removable && not n.Nait.removable then
          bump (info.Pta.kind, `Tl_only);
        if n.Nait.removable || t.Thread_local.removable then
          bump (info.Pta.kind, `Combined)
      end);
  let get kind what = Option.value ~default:0 (Hashtbl.find_opt totals (kind, what)) in
  List.map
    (fun kind ->
      {
        program = name;
        kind;
        total = get kind `Total;
        nait_only = get kind `Nait_only;
        tl_only = get kind `Tl_only;
        combined = get kind `Combined;
      })
    [ `Read; `Write ]

let pp_table ppf rows =
  Fmt.pf ppf "%-12s %-6s %8s %10s %10s %10s@." "program" "type" "total"
    "NAIT-TL" "TL-NAIT" "TL+NAIT";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-12s %-6s %8d %10d %10d %10d@." r.program
        (match r.kind with `Read -> "read" | `Write -> "write")
        r.total r.nait_only r.tl_only r.combined)
    rows
