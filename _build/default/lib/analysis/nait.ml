open Stm_ir

type decision = { removable : bool; reason : string }

let decide pta (info : Pta.site_info) =
  if info.Pta.clinit_own then { removable = true; reason = "clinit" }
  else if not (Pta.site_reachable pta Pta.Nontxn info.Pta.site) then
    { removable = true; reason = "unreachable" }
  else begin
    let objs = Pta.site_objs pta Pta.Nontxn info.Pta.site in
    let conflicting =
      match info.Pta.kind with
      | `Read -> Pta.ISet.exists (fun o -> Pta.written_in_txn pta o) objs
      | `Write ->
          Pta.ISet.exists
            (fun o -> Pta.written_in_txn pta o || Pta.read_in_txn pta o)
            objs
    in
    if conflicting then { removable = false; reason = "txn-conflict" }
    else { removable = true; reason = "nait" }
  end

let apply_txn_reads prog pta =
  let marked = ref 0 in
  let removable = Hashtbl.create 64 in
  Pta.iter_sites pta (fun info ->
      if info.Pta.kind = `Read && Pta.site_reachable pta Pta.Txn info.Pta.site
      then begin
        let objs = Pta.site_objs pta Pta.Txn info.Pta.site in
        if not (Pta.ISet.exists (fun o -> Pta.written_in_txn pta o) objs) then
          Hashtbl.replace removable info.Pta.site ()
      end);
  Ir.iter_methods prog (fun m ->
      Ir.iter_access_notes m (fun _ note ->
          if Hashtbl.mem removable note.Ir.site && not note.Ir.txn_unlogged
          then begin
            note.Ir.txn_unlogged <- true;
            incr marked
          end));
  !marked

let apply prog pta =
  let removed = ref 0 in
  let decisions = Hashtbl.create 256 in
  Pta.iter_sites pta (fun info ->
      Hashtbl.replace decisions info.Pta.site (decide pta info));
  Ir.iter_methods prog (fun m ->
      Ir.iter_access_notes m (fun _ note ->
          match (note.Ir.barrier, Hashtbl.find_opt decisions note.Ir.site) with
          | Ir.Bar_auto, Some { removable = true; reason } ->
              note.Ir.barrier <- Ir.Bar_removed reason;
              incr removed
          | _ -> ()));
  !removed
