(** Whole-program pointer analysis with transactional contexts
    (paper Section 5.1).

    An Andersen-style, flow-insensitive, field-sensitive analysis with an
    on-the-fly call graph. Context-sensitivity is exactly the paper's
    novel two-element form: every method is analyzed in at most two
    contexts — {e in transaction} and {e not in transaction}. All calls
    inherit the caller's context, except calls lexically inside an
    [atomic] block, which always analyze the callee in-transaction. Heap
    specialization pairs every allocation site with the allocating
    context, so the same [new] yields distinct abstract objects inside and
    outside transactions.

    The result also carries the two derived facts the barrier analyses
    need: per-object {e accessed-in-transaction} bits (with the paper's
    class-initializer discount) for NAIT, and a {e thread-shared} bit
    (reachable from statics or from a thread object) for the TL
    comparison analysis. *)

type ctx = Txn | Nontxn

module ISet : Set.S with type elt = int

type aid = int
(** Abstract object id. *)

type site_info = {
  site : int;  (** the access site id from the instruction's note *)
  meth : Stm_ir.Ir.meth;
  kind : [ `Read | `Write ];
  array : bool;
  clinit_own : bool;
      (** static access to the enclosing class's own statics inside its
          [clinit] method (exempt per Java class-init semantics) *)
}

type t

val analyze : Stm_ir.Ir.program -> t

(** {1 Abstract objects} *)

val aid_class : t -> aid -> string
val aid_heap_ctx : t -> aid -> ctx
val aid_is_statics : t -> aid -> bool
val n_objects : t -> int

(** {1 Per-site facts} *)

val site_reachable : t -> ctx -> int -> bool
(** Is the access site reachable with the given {e effective} context
    (method context joined with lexical atomic nesting)? *)

val site_objs : t -> ctx -> int -> ISet.t
(** Receiver objects that may flow to the site in the given effective
    context. *)

val iter_sites : t -> (site_info -> unit) -> unit
(** Visit every memory-access site of the program once. *)

(** {1 Derived facts} *)

val read_in_txn : t -> aid -> bool
val written_in_txn : t -> aid -> bool
val thread_shared : t -> aid -> bool
(** Reachable from a static field or a thread object (TL's notion of
    escape). *)

val reachable_methods : t -> (string * ctx) list
(** Analyzed (method key, context) pairs, for diagnostics. *)
