(** Thread-local (TL) analysis — the paper's comparison baseline
    (Section 5, Figure 13).

    A non-transactional access needs no barrier if every object it may
    access is thread-local, i.e. not reachable from a static field or
    from a thread object. This is the classic synchronization-removal
    escape analysis; the paper shows NAIT subsumes almost all of its
    removals and finds many more (data handed off between threads through
    transactional queues, fields of [Thread] subclasses, ...). *)

type decision = { removable : bool; reason : string }

val decide : Pta.t -> Pta.site_info -> decision

val apply : Stm_ir.Ir.program -> Pta.t -> int
(** Rewrite removable sites' notes to [Bar_removed "tl"]; returns the
    count. *)
