(* Seven non-transactional kernels mirroring the memory-access character
   of the SPEC JVM98 benchmarks the paper measures in Figures 15-17:

   - compress:  run-length/byte codec over heap buffers held in an object
                (thread-private at runtime -> DEA wins; many consecutive
                accesses to the same array -> aggregation wins)
   - jess:      rule matching over linked fact lists (object-heavy)
   - db:        record vector with lookups, updates and a sort
   - javac:     expression-tree building and constant folding
   - mpegaudio: fixed-point synthesis filter over *static* arrays
                (public data defeats DEA, as in the paper)
   - mtrt:      ray/sphere intersections with short-lived vector objects
                (some provably local -> intraprocedural escape wins ~30%)
   - jack:      token scanner producing token objects

   Each prints a checksum so that tests can verify the computation is
   identical under every barrier configuration. *)

let compress =
  {
    Workload.name = "compress";
    descr = "RLE/byte codec over private buffers";
    kind = Workload.Nontxn;
    params = [ ("size", 2000); ("iters", 3) ];
    source =
      {|
class Buffers {
  int[] input;
  int[] output;
  int[] dict;
}
class Compress {
  static void main() {
    int size = param("size");
    int iters = param("iters");
    int check = 0;
    for (int it = 0; it < iters; it++) {
      check = check + round(it, size);
    }
    print(check);
  }
  static Buffers setup(int size) {
    Buffers b = new Buffers();
    b.input = new int[size];
    b.output = new int[size * 2];
    b.dict = new int[512];
    return b;
  }
  static int round(int seed, int size) {
    Buffers b = setup(size);
    int[] input = b.input;
    for (int i = 0; i < size; i++) {
      input[i] = hash(i / 7 + seed) % 17;
    }
    int[] output = b.output;
    int[] dict = b.dict;
    // per-byte frequency pass (write-heavy, like the codec's model
    // update): read input, read-modify-write the dictionary slot
    for (int i = 0; i < size; i++) {
      int c = input[i];
      dict[c] = dict[c] + 1;
      dict[256 + (c * 7 + i) % 256] = dict[256 + (c * 7 + i) % 256] + c;
    }
    int out = 0;
    int i = 0;
    while (i < size) {
      int c = input[i];
      int run = 1;
      while (i + run < size && input[i + run] == c && run < 255) {
        run = run + 1;
      }
      output[out] = c;
      output[out + 1] = run;
      out = out + 2;
      i = i + run;
    }
    int pos = 0;
    int check = 0;
    for (int j = 0; j < out; j = j + 2) {
      int c = output[j];
      int r = output[j + 1];
      check = check + c * r;
      pos = pos + r;
    }
    assert(pos == size);
    return (check + dict[0] + dict[300]) % 100000;
  }
}
|};
  }

let jess =
  {
    Workload.name = "jess";
    descr = "rule matching over linked fact lists";
    kind = Workload.Nontxn;
    params = [ ("size", 300); ("iters", 4) ];
    source =
      {|
class Fact {
  int kind;
  int a;
  int b;
  Fact next;
}
class Jess {
  static void main() {
    int size = param("size");
    int iters = param("iters");
    int check = 0;
    for (int it = 0; it < iters; it++) {
      check = check + round(it, size);
    }
    print(check);
  }
  static Fact alloc() { return new Fact(); }
  static int round(int seed, int size) {
    Fact head = null;
    for (int i = 0; i < size; i++) {
      Fact f = alloc();
      f.kind = hash(i + seed) % 5;
      f.a = i % 11;
      f.b = (i * 3) % 13;
      f.next = head;
      head = f;
    }
    // rule 1: kind 0 and a == b mod 7 fires and rewrites kind
    int fired = 0;
    Fact p = head;
    while (p != null) {
      if (p.kind == 0 && p.a % 7 == p.b % 7) {
        p.kind = 4;
        fired = fired + 1;
      }
      p = p.next;
    }
    // rule 2: adjacent facts with equal kind merge weights
    p = head;
    int merged = 0;
    while (p != null && p.next != null) {
      if (p.kind == p.next.kind) {
        p.a = p.a + p.next.a;
        merged = merged + 1;
      }
      p = p.next;
    }
    // aggregate
    int sum = 0;
    p = head;
    while (p != null) {
      sum = sum + p.kind * 3 + p.a - p.b;
      p = p.next;
    }
    return (sum + fired * 17 + merged) % 100000;
  }
}
|};
  }

let db =
  {
    Workload.name = "db";
    descr = "record vector: lookups, updates, insertion sort";
    kind = Workload.Nontxn;
    params = [ ("size", 220); ("iters", 3) ];
    source =
      {|
class Record {
  int key;
  int payload;
  int touched;
}
class Database {
  Record[] records;
  int n;
}
class Db {
  static void main() {
    int size = param("size");
    int iters = param("iters");
    int check = 0;
    for (int it = 0; it < iters; it++) {
      check = check + round(it, size);
    }
    print(check);
  }
  static Database setup(int seed, int size) {
    Database d = new Database();
    d.records = new Record[size];
    d.n = size;
    for (int i = 0; i < size; i++) {
      Record r = new Record();
      r.key = hash(i * 13 + seed) % 10000;
      r.payload = i;
      d.records[i] = r;
    }
    return d;
  }
  static int round(int seed, int size) {
    Database d = setup(seed, size);
    Record[] rs = d.records;
    // insertion sort by key
    for (int i = 1; i < size; i++) {
      Record r = rs[i];
      int j = i - 1;
      while (j >= 0 && rs[j].key > r.key) {
        rs[j + 1] = rs[j];
        j = j - 1;
      }
      rs[j + 1] = r;
    }
    // lookups (binary search) + updates
    int found = 0;
    for (int q = 0; q < size; q++) {
      int target = hash(q + seed * 7) % 10000;
      int lo = 0;
      int hi = size - 1;
      while (lo < hi) {
        int mid = (lo + hi) / 2;
        if (rs[mid].key < target) { lo = mid + 1; } else { hi = mid; }
      }
      if (rs[lo].key == target) {
        found = found + 1;
        rs[lo].touched = rs[lo].touched + 1;
      }
    }
    int sum = 0;
    for (int i = 0; i < size; i++) { sum = sum + rs[i].key % 97 + rs[i].touched; }
    return (sum + found) % 100000;
  }
}
|};
  }

let javac =
  {
    Workload.name = "javac";
    descr = "expression-tree building and constant folding";
    kind = Workload.Nontxn;
    params = [ ("size", 9); ("iters", 40) ];
    source =
      {|
class Node {
  int op;      // 0 = leaf, 1 = add, 2 = mul
  int value;
  Node left;
  Node right;
}
class Javac {
  static void main() {
    int depth = param("size");
    int iters = param("iters");
    int check = 0;
    for (int it = 0; it < iters; it++) {
      Node t = build(depth, it);
      fold(t);
      check = check + t.value % 1000;
    }
    print(check);
  }
  static Node alloc() { return new Node(); }
  static Node build(int depth, int seed) {
    Node n = alloc();
    if (depth == 0) {
      n.op = 0;
      n.value = hash(seed) % 10;
    } else {
      n.op = 1 + hash(seed) % 2;
      n.left = build(depth - 1, seed * 2 + 1);
      n.right = build(depth - 1, seed * 2 + 2);
    }
    return n;
  }
  static void fold(Node n) {
    if (n.op != 0) {
      fold(n.left);
      fold(n.right);
      if (n.op == 1) { n.value = n.left.value + n.right.value; }
      if (n.op == 2) { n.value = (n.left.value * n.right.value) % 9973; }
      n.op = 0;
      n.left = null;
      n.right = null;
    }
  }
}
|};
  }

let mpegaudio =
  {
    Workload.name = "mpegaudio";
    descr = "fixed-point synthesis filter over static arrays";
    kind = Workload.Nontxn;
    params = [ ("size", 32); ("iters", 40) ];
    source =
      {|
class Mpeg {
  static int[] window;
  static int[] coeffs;
  static int[] bands;
  static int[] pcm;
  static void clinit() {
    Mpeg.window = new int[512];
    Mpeg.coeffs = new int[64];
    Mpeg.bands = new int[32];
    Mpeg.pcm = new int[32];
    for (int i = 0; i < 512; i++) { Mpeg.window[i] = hash(i) % 256 - 128; }
    for (int i = 0; i < 64; i++) { Mpeg.coeffs[i] = hash(i + 512) % 128; }
  }
  static void main() {
    // Mpeg.clinit runs automatically on the first static access
    int frames = param("iters");
    int n = param("size");
    int check = 0;
    for (int f = 0; f < frames; f++) {
      check = (check + frame(f, n)) % 100000;
    }
    print(check);
  }
  static int frame(int seed, int n) {
    int[] bands = Mpeg.bands;
    int[] pcm = Mpeg.pcm;
    int[] window = Mpeg.window;
    int[] coeffs = Mpeg.coeffs;
    for (int i = 0; i < n; i++) { bands[i] = hash(seed * 32 + i) % 1024; }
    // sliding window update: read-modify-write runs on one static array
    // (these fold into aggregated barriers but stay public, so DEA
    // cannot help - the paper's mpegaudio behaviour)
    for (int k = 0; k < 64; k++) {
      int w0 = window[k * 8];
      window[k * 8] = w0 - w0 / 16 + k % 3;
      window[k * 8 + 1] = window[k * 8 + 1] + w0 % 5;
    }
    for (int i = 0; i < n; i++) {
      int acc = 0;
      for (int j = 0; j < 16; j++) {
        acc = acc + bands[(i + j) % 32] * window[(i * 16 + j) % 512]
                  + coeffs[(i + j * 2) % 64];
      }
      pcm[i] = pcm[i] / 2 + acc / 16;
    }
    int out = 0;
    for (int i = 0; i < n; i++) { out = out + abs(pcm[i]) % 251; }
    return out;
  }
}
|};
  }

let mtrt =
  {
    Workload.name = "mtrt";
    descr = "ray/sphere intersection with short-lived vectors";
    kind = Workload.Nontxn;
    params = [ ("size", 24); ("iters", 260) ];
    source =
      {|
class Vec {
  int x;
  int y;
  int z;
}
class Sphere {
  Vec center;
  int r2;
  int color;
}
class Scene {
  Sphere[] spheres;
  int n;
}
class Mtrt {
  static void main() {
    int nspheres = param("size");
    int rays = param("iters");
    Scene sc = buildScene(nspheres);
    int check = 0;
    for (int i = 0; i < rays; i++) {
      check = (check + trace(sc, i)) % 100000;
    }
    print(check);
  }
  static Scene buildScene(int n) {
    Scene sc = new Scene();
    sc.spheres = new Sphere[n];
    sc.n = n;
    for (int i = 0; i < n; i++) {
      Sphere s = new Sphere();
      Vec c = new Vec();
      c.x = hash(i * 3) % 200 - 100;
      c.y = hash(i * 3 + 1) % 200 - 100;
      c.z = 100 + hash(i * 3 + 2) % 400;
      s.center = c;
      s.r2 = 100 + hash(i + 77) % 900;
      s.color = i;
      sc.spheres[i] = s;
    }
    return sc;
  }
  static int trace(Scene sc, int seed) {
    // ray direction: a fresh vector that never escapes this method -
    // intraprocedural escape analysis removes its barriers
    Vec d = new Vec();
    d.x = hash(seed) % 41 - 20;
    d.y = hash(seed + 1) % 41 - 20;
    d.z = 64;
    int best = -1;
    int bestDist = 1000000;
    Sphere[] ss = sc.spheres;
    for (int i = 0; i < sc.n; i++) {
      Sphere s = ss[i];
      Vec c = s.center;
      // projected distance along the ray (fixed point, scaled by 64)
      int dot = c.x * d.x + c.y * d.y + c.z * d.z;
      if (dot > 0) {
        int len2 = c.x * c.x + c.y * c.y + c.z * c.z;
        int proj2 = dot / 64 * (dot / 64) / (d.x * d.x + d.y * d.y + d.z * d.z + 1) * 64;
        int perp2 = len2 - proj2;
        if (perp2 < s.r2 && len2 < bestDist) {
          bestDist = len2;
          best = s.color;
        }
      }
    }
    return best + bestDist % 97;
  }
}
|};
  }

let jack =
  {
    Workload.name = "jack";
    descr = "token scanner producing token objects";
    kind = Workload.Nontxn;
    params = [ ("size", 1600); ("iters", 3) ];
    source =
      {|
class Token {
  int kind;
  int start;
  int len;
  Token next;
}
class Jack {
  static Token mkToken() { return new Token(); }
  static void main() {
    int size = param("size");
    int iters = param("iters");
    int check = 0;
    for (int it = 0; it < iters; it++) {
      check = check + scan(it, size);
    }
    print(check);
  }
  static int scan(int seed, int size) {
    int[] input = new int[size];
    for (int i = 0; i < size; i++) {
      int h = hash(i + seed * 991) % 100;
      // classes: 0-59 letter, 60-89 digit, 90-99 space
      input[i] = h;
    }
    Token head = null;
    int ntok = 0;
    int i = 0;
    while (i < size) {
      int c = input[i];
      Token t = mkToken();
      t.start = i;
      if (c < 60) {
        t.kind = 1;
        while (i < size && input[i] < 60) { i = i + 1; }
      } else {
        if (c < 90) {
          t.kind = 2;
          while (i < size && input[i] >= 60 && input[i] < 90) { i = i + 1; }
        } else {
          t.kind = 0;
          while (i < size && input[i] >= 90) { i = i + 1; }
        }
      }
      t.len = i - t.start;
      t.next = head;
      head = t;
      ntok = ntok + 1;
    }
    int sum = 0;
    Token p = head;
    while (p != null) {
      sum = sum + p.kind * p.len;
      p = p.next;
    }
    return (sum + ntok) % 100000;
  }
}
|};
  }

let all = [ compress; jess; db; javac; mpegaudio; mtrt; jack ]
