lib/workloads/tsp.ml: Workload
