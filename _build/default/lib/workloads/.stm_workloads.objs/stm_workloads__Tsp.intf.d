lib/workloads/tsp.mli: Workload
