lib/workloads/jbb.mli: Workload
