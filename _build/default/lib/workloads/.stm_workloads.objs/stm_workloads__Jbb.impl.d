lib/workloads/jbb.ml: Workload
