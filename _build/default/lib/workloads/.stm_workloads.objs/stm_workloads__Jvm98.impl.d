lib/workloads/jvm98.ml: Workload
