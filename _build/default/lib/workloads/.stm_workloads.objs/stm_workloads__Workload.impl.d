lib/workloads/workload.ml: List Stm_jtlang
