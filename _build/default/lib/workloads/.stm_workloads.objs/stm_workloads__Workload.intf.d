lib/workloads/workload.mli: Stm_ir
