lib/workloads/oo7.ml: Workload
