lib/workloads/oo7.mli: Workload
