lib/workloads/jvm98.mli: Workload
