(** Seven non-transactional Jt kernels mirroring the memory-access
    character of the SPEC JVM98 benchmarks used in Figures 15-17. Each
    prints a deterministic checksum. See the implementation header for
    the per-kernel design rationale (which optimization each kernel is
    sensitive to). *)

val compress : Workload.t
val jess : Workload.t
val db : Workload.t
val javac : Workload.t
val mpegaudio : Workload.t
(** Operates on static arrays initialized by a [clinit]: public data that
    defeats DEA, as in the paper. *)

val mtrt : Workload.t
(** Contains provably-local temporaries: the one kernel where
    intraprocedural escape analysis wins noticeably (paper: -30%). *)

val jack : Workload.t

val all : Workload.t list
(** In the paper's figure order. *)
