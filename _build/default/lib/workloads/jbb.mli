(** JBB (Figure 20): SPECjbb-like multi-warehouse order processing, one
    worker per warehouse, 2% cross-warehouse transactions, per-warehouse
    monitors in lock mode. Nearly all time is inside transactions, so
    strong atomicity is cheap here even unoptimized. Parameters:
    [threads] (= warehouses), [ops] (total), [items], [use_locks]. *)

val jbb : Workload.t
