(* OO7 (Figure 19): traversals over a synthetic design database organized
   as an assembly tree with composite parts at the leaves.

   As in the paper's configuration, synchronization is at the root: the
   lock version takes one coarse root lock per traversal (and therefore
   does not scale), while the transactional version relies on object-level
   conflict detection, so traversals to different leaves proceed in
   parallel. The mix is 80% read-only lookups / 20% updates. Nearly all
   work happens inside transactions, so strong atomicity costs little
   here even without optimizations. *)

let oo7 =
  {
    Workload.name = "oo7";
    descr = "assembly-tree database, root-level atomic traversals (80/20)";
    kind = Workload.Txn;
    params =
      [
        ("threads", 4);
        ("ops", 1500);
        ("depth", 3);
        ("fanout", 3);
        ("parts", 6);
        ("use_locks", 0);
      ];
    source =
      {|
class Part {
  int f1;
  int f2;
}
class Assembly {
  Assembly[] kids;
  Part[] parts;
  int level;
}
class Ow extends Thread {
  int id;
  int ops;
  int useLocks;
  int lookups;
  int updates;
  void run() {
    for (int i = 0; i < ops; i++) {
      int r = hash(id * 100003 + i);
      if (useLocks == 1) {
        synchronized (Oo7.rootLock) { traverse(r); }
      } else {
        atomic { traverse(r); }
      }
    }
  }
  void traverse(int r) {
    Assembly a = Oo7.root;
    while (a.kids != null) {
      int k = abs(hash(r + a.level * 31)) % a.kids.length;
      a = a.kids[k];
    }
    Part[] ps = a.parts;
    if (abs(r) % 100 < 80) {
      // lookup: sum the composite part fields
      int sum = 0;
      for (int i = 0; i < ps.length; i++) {
        sum = sum + ps[i].f1 + ps[i].f2;
      }
      lookups = lookups + sum % 2 + 1;
    } else {
      // update: swap-increment the part fields
      for (int i = 0; i < ps.length; i++) {
        Part p = ps[i];
        int t = p.f1;
        p.f1 = p.f2 + 1;
        p.f2 = t;
      }
      updates = updates + 1;
    }
  }
}
class Lk { int dummy; }
class Oo7 {
  static Assembly root;
  static Lk rootLock;
  static int nparts;
  static Assembly build(int level, int depth, int fanout, int seed) {
    Assembly a = new Assembly();
    a.level = level;
    if (level == depth) {
      a.parts = new Part[Oo7.nparts];
      for (int i = 0; i < Oo7.nparts; i++) {
        Part p = new Part();
        p.f1 = hash(seed * 7 + i) % 100;
        p.f2 = hash(seed * 13 + i) % 100;
        a.parts[i] = p;
      }
    } else {
      a.kids = new Assembly[fanout];
      for (int i = 0; i < fanout; i++) {
        a.kids[i] = build(level + 1, depth, fanout, seed * fanout + i + 1);
      }
    }
    return a;
  }
  static void main() {
    int nt = param("threads");
    int total = param("ops");
    int depth = param("depth");
    int fanout = param("fanout");
    Oo7.nparts = param("parts");
    int useLocks = param("use_locks");
    Oo7.rootLock = new Lk();
    Oo7.root = build(0, depth, fanout, 1);
    rebase_clock();  // measure steady state, excluding serial setup
    int[] tids = new int[nt];
    for (int i = 0; i < nt; i++) {
      Ow w = new Ow();
      w.id = i;
      w.ops = total / nt;
      w.useLocks = useLocks;
      tids[i] = spawn(w);
    }
    for (int i = 0; i < nt; i++) { join(tids[i]); }
    // checksum over the whole database
    print(checksum(Oo7.root));
  }
  static int checksum(Assembly a) {
    int s = a.level;
    if (a.kids != null) {
      for (int i = 0; i < a.kids.length; i++) { s = s + checksum(a.kids[i]); }
    } else {
      for (int i = 0; i < a.parts.length; i++) {
        s = s + a.parts[i].f1 * 3 + a.parts[i].f2;
      }
    }
    return s % 1000000;
  }
}
|};
  }
