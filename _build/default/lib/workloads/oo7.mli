(** OO7 (Figure 19): traversals over an assembly-tree database with
    composite parts at the leaves, 80% lookups / 20% updates, root-level
    synchronization (one coarse lock in lock mode - which therefore does
    not scale - vs object-level STM conflict detection). Parameters:
    [threads], [ops] (total, split among threads), [depth], [fanout],
    [parts], [use_locks]. *)

val oo7 : Workload.t
