type kind = Nontxn | Txn

type t = {
  name : string;
  descr : string;
  kind : kind;
  source : string;
  params : (string * int) list;
}

let program t = Stm_jtlang.Jt.compile ~name:t.name t.source

let scaled t factor =
  let scale (k, v) =
    match k with
    | "iters" | "ops" | "size" ->
        (k, max 1 (int_of_float (float_of_int v *. factor)))
    | _ -> (k, v)
  in
  { t with params = List.map scale t.params }
