(** Benchmark workload descriptors.

    A workload is a Jt program plus default parameters. Non-transactional
    workloads (the JVM98-like kernels of Figures 15-17) are
    single-threaded and measure barrier overhead; transactional workloads
    (Tsp / OO7 / JBB, Figures 18-20) take a ["threads"] parameter and a
    ["use_locks"] parameter selecting the lock-based baseline. *)

type kind = Nontxn | Txn

type t = {
  name : string;
  descr : string;
  kind : kind;
  source : string;  (** Jt source *)
  params : (string * int) list;  (** default parameters *)
}

val program : t -> Stm_ir.Ir.program
(** Compile a fresh copy (notes unshared with other callers). *)

val scaled : t -> float -> t
(** Scale the workload's iteration parameters (["iters"], ["ops"],
    ["size"] if present) by a factor, for quick test runs. *)
