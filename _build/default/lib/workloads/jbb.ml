(* JBB (Figure 20): a SPECjbb-like multi-warehouse order-processing
   workload. One worker thread per warehouse processes new-order and
   payment transactions against its own warehouse, with a small
   percentage of cross-warehouse orders. Both the lock version (one
   monitor per warehouse) and the transactional version scale; nearly all
   time is spent inside transactions, so strong atomicity is cheap even
   unoptimized, and cheaper still with DEA and whole-program opts. *)

let jbb =
  {
    Workload.name = "jbb";
    descr = "multi-warehouse order processing (per-warehouse txns)";
    kind = Workload.Txn;
    params =
      [ ("threads", 4); ("ops", 1600); ("items", 48); ("use_locks", 0) ];
    source =
      {|
class Item {
  int stock;
  int price;
  int sold;
}
class Warehouse {
  Item[] items;
  int balance;
  int orders;
  int payments;
}
class Jw extends Thread {
  int id;
  int ops;
  int useLocks;
  void run() {
    Warehouse mine = Jbb.whs[id];
    int nwh = Jbb.whs.length;
    for (int o = 0; o < ops; o++) {
      int r = hash(id * 777001 + o);
      Warehouse target = mine;
      if (abs(r) % 100 < 2) {
        // cross-warehouse transaction
        target = Jbb.whs[abs(hash(r + 1)) % nwh];
      }
      if (abs(r) % 10 < 7) {
        if (useLocks == 1) {
          synchronized (target) { newOrder(target, r); }
        } else {
          atomic { newOrder(target, r); }
        }
      } else {
        if (useLocks == 1) {
          synchronized (target) { payment(target, r); }
        } else {
          atomic { payment(target, r); }
        }
      }
    }
  }
  void newOrder(Warehouse w, int r) {
    int total = 0;
    int n = w.items.length;
    for (int k = 0; k < 6; k++) {
      int idx = abs(hash(r + k * 17)) % n;
      Item it = w.items[idx];
      int q = 1 + abs(r + k) % 3;
      it.stock = it.stock - q;
      it.sold = it.sold + q;
      total = total + it.price * q;
    }
    w.balance = w.balance + total;
    w.orders = w.orders + 1;
  }
  void payment(Warehouse w, int r) {
    int amount = 10 + abs(r) % 90;
    w.balance = w.balance - amount;
    w.payments = w.payments + 1;
  }
}
class Jbb {
  static Warehouse[] whs;
  static void main() {
    int nt = param("threads");
    int total = param("ops");
    int nitems = param("items");
    int useLocks = param("use_locks");
    int per = total / nt;
    Jbb.whs = new Warehouse[nt];
    for (int i = 0; i < nt; i++) {
      Warehouse w = new Warehouse();
      w.items = new Item[nitems];
      for (int j = 0; j < nitems; j++) {
        Item it = new Item();
        it.stock = per * 20 + 1000;  // never goes negative
        it.price = 1 + hash(i * nitems + j) % 50;
        w.items[j] = it;
      }
      Jbb.whs[i] = w;
    }
    rebase_clock();  // measure steady state, excluding serial setup
    int[] tids = new int[nt];
    for (int i = 0; i < nt; i++) {
      Jw jw = new Jw();
      jw.id = i;
      jw.ops = per;
      jw.useLocks = useLocks;
      tids[i] = spawn(jw);
    }
    for (int i = 0; i < nt; i++) { join(tids[i]); }
    int check = 0;
    int sold = 0;
    for (int i = 0; i < nt; i++) {
      Warehouse w = Jbb.whs[i];
      check = check + w.balance % 10007 + w.orders + w.payments;
      for (int j = 0; j < w.items.length; j++) {
        assert(w.items[j].stock > 0);
        sold = sold + w.items[j].sold;
      }
    }
    print(check % 1000000);
    print(sold);
  }
}
|};
  }
