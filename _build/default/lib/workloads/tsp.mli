(** Tsp (Figure 18): branch-and-bound traveling salesman with a shared
    work queue and best-so-far bound. Parameters: [cities] (problem
    size), [threads], [use_locks] (1 = lock-based baseline). Prints the
    optimal tour length, which is schedule- and thread-count-independent
    (checked against a brute-force oracle in the tests). *)

val tsp : Workload.t
