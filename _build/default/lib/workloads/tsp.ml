(* Tsp (Figure 18): branch-and-bound traveling salesman.

   Threads take partial tours (two fixed hops) from a shared work queue,
   search their subtree with thread-private path/visited arrays, and
   publish improved bounds into a shared best-so-far - the structure of
   von Praun & Gross's Tsp that the paper uses. The hot search loop is
   non-transactional (reading the bound with a plain racy read, as the
   original does), so unoptimized strong atomicity pays heavily here;
   NAIT removes the barriers on the private arrays, the distance matrix
   and the per-thread statistics fields (which live on a Thread subclass,
   defeating the TL analysis - the paper's own example). *)

let tsp =
  {
    Workload.name = "tsp";
    descr = "branch-and-bound TSP with shared work queue and bound";
    kind = Workload.Txn;
    params = [ ("threads", 4); ("cities", 8); ("use_locks", 0) ];
    source =
      {|
class Lock { int dummy; }
class Dist {
  static int[] d;
  static int n;
}
class Work {
  static int[] tasks;
  static int top;
}
class Best {
  static int len;
}
class Searcher extends Thread {
  int useLocks;
  int nodes;      // per-thread statistics: thread-local but on a Thread
  int improved;   // subclass, so TL cannot prove them local; NAIT can
  void run() {
    int n = Dist.n;
    int[] path = new int[n];
    bool[] visited = new bool[n];
    bool done = false;
    while (!done) {
      int t = takeTask();
      if (t < 0) {
        done = true;
      } else {
        int a = t / n;
        int b = t % n;
        for (int i = 0; i < n; i++) { visited[i] = false; }
        path[0] = 0;
        path[1] = a;
        path[2] = b;
        visited[0] = true;
        visited[a] = true;
        visited[b] = true;
        int len = Dist.d[a] + Dist.d[a * n + b];
        search(path, visited, 3, len);
      }
    }
  }
  int takeTask() {
    int t = -1;
    if (useLocks == 1) {
      synchronized (Tsp.qlock) { t = pop(); }
    } else {
      atomic { t = pop(); }
    }
    return t;
  }
  int pop() {
    if (Work.top <= 0) { return -1; }
    Work.top = Work.top - 1;
    return Work.tasks[Work.top];
  }
  void search(int[] path, bool[] visited, int depth, int len) {
    nodes = nodes + 1;
    int n = Dist.n;
    int bound = Best.len;   // deliberately unsynchronized, as in Tsp
    if (len < bound) {
      if (depth == n) {
        int total = len + Dist.d[path[n - 1] * n];
        publishBest(total);
      } else {
        for (int c = 1; c < n; c++) {
          if (!visited[c]) {
            visited[c] = true;
            path[depth] = c;
            search(path, visited, depth + 1, len + Dist.d[path[depth - 1] * n + c]);
            visited[c] = false;
          }
        }
      }
    }
  }
  void publishBest(int total) {
    improved = improved + 1;  // statistics only: outside the transaction
    if (useLocks == 1) {
      synchronized (Tsp.block) { record(total); }
    } else {
      atomic { record(total); }
    }
  }
  void record(int total) {
    if (total < Best.len) {
      Best.len = total;
    }
  }
}
class Tsp {
  static Lock qlock;
  static Lock block;
  static void main() {
    int n = param("cities");
    int nt = param("threads");
    int useLocks = param("use_locks");
    Tsp.qlock = new Lock();
    Tsp.block = new Lock();
    Dist.n = n;
    Dist.d = new int[n * n];
    for (int i = 0; i < n; i++) {
      for (int j = 0; j < n; j++) {
        if (i != j) {
          int h = hash(min(i, j) * n + max(i, j));
          Dist.d[i * n + j] = 10 + abs(h) % 90;
        }
      }
    }
    Best.len = 1000000;
    // tasks: all ordered pairs (a, b) of distinct non-zero cities
    Work.tasks = new int[n * n];
    Work.top = 0;
    for (int a = 1; a < n; a++) {
      for (int b = 1; b < n; b++) {
        if (a != b) {
          Work.tasks[Work.top] = a * n + b;
          Work.top = Work.top + 1;
        }
      }
    }
    rebase_clock();  // measure steady state, excluding serial setup
    int[] tids = new int[nt];
    for (int i = 0; i < nt; i++) {
      Searcher s = new Searcher();
      s.useLocks = useLocks;
      tids[i] = spawn(s);
    }
    for (int i = 0; i < nt; i++) { join(tids[i]); }
    print(Best.len);
    assert(Best.len < 1000000);
  }
}
|};
  }
