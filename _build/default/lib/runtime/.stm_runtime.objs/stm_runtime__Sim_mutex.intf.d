lib/runtime/sim_mutex.mli: Cost
