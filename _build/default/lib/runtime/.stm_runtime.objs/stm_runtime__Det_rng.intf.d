lib/runtime/det_rng.mli:
