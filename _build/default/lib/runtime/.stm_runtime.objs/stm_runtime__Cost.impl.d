lib/runtime/cost.ml:
