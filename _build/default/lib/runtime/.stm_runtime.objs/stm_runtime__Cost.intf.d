lib/runtime/cost.mli:
