lib/runtime/det_rng.ml: Int64
