lib/runtime/heap.ml: Array Atomic Fmt String
