lib/runtime/heap.mli: Atomic Format
