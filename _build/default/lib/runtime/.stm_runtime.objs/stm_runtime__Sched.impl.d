lib/runtime/sched.ml: Array Det_rng Effect List Option
