lib/runtime/sim_mutex.ml: Cost Queue Sched
