lib/runtime/sched.mli:
