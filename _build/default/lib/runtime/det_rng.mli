(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the simulator goes through this module so
    that whole runs are reproducible from a single seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy with the same future stream. *)

val next : t -> int
(** Next raw 62-bit non-negative value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val bool : t -> bool

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val split : t -> t
(** A generator with a stream independent from the parent's. *)
