lib/ir/ir.mli: Format Hashtbl
