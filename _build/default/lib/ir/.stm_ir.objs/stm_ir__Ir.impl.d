lib/ir/ir.ml: Array Fmt Hashtbl List Printf String
