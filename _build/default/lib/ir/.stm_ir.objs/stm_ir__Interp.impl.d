lib/ir/interp.ml: Array Barriers Config Cost Dea Det_rng Fmt Hashtbl Heap Ir List Option Sched Sim_mutex Stats Stm Stm_core Stm_runtime String Txrec
