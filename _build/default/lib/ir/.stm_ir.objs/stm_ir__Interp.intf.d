lib/ir/interp.mli: Ir Sched Stm_core Stm_runtime
