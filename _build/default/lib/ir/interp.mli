(** IR interpreter: executes a Jt program on the simulated multiprocessor
    through the configured STM.

    The interpreter plays the role of the paper's JIT-compiled code:

    - inside [atomic] blocks, memory accesses run the transactional
      protocol (open-for-read / open-for-write);
    - outside, they run the non-transactional path that the access site's
      {!Stm_ir.Ir.barrier_kind} note dictates: the configured isolation
      barrier ({!Stm_ir.Ir.Bar_auto}), a direct access
      ({!Stm_ir.Ir.Bar_removed}, what the compiler emits after NAIT /
      thread-local / immutability / intraprocedural escape analysis), or
      an aggregated barrier (Section 6, Figure 14) that acquires the
      object's record once for a whole group of accesses;
    - [synchronized] blocks use per-object simulated monitors;
    - [spawn] publishes the thread object (as the paper's runtime does)
      and starts a simulated thread on its [run] method.

    Every instruction charges the cost model, so the scheduler's makespan
    is the parallel execution time in cycles. *)

open Stm_runtime

exception Interp_error of string

type outcome = {
  result : Sched.result;
  stats : Stm_core.Stats.t;
  prints : string list;  (** output of [print] in emission order *)
  instrs : int;  (** instructions executed across all threads *)
  site_profile : (int * int) list;
      (** (access-site id, executions through the barrier path), hottest
          first; empty unless [~profile:true] was passed *)
}

val run :
  ?policy:Sched.policy ->
  ?max_steps:int ->
  ?params:(string * int) list ->
  ?profile:bool ->
  cfg:Stm_core.Config.t ->
  Ir.program ->
  outcome
(** Execute [main] of the program's main class. [params] are the values
    the [param("name")] builtin returns (e.g. thread counts and workload
    sizes). Raises {!Interp_error} only for harness-level failures;
    runtime errors inside simulated threads are reported through
    [result.exns]. *)

val explorer_instance :
  ?params:(string * int) list -> Ir.program -> (unit -> unit) * (unit -> string)
(** [(main, observe)] for driving a whole Jt program under the litmus
    explorer ({!Stm_litmus.Explorer}): [main] runs the program's [main]
    inside an existing {!Stm_core.Stm.run}, and [observe] returns the
    program's [print] output joined with ["|"]. Each call returns a fresh
    instance (fresh statics, heap state is reset by the explorer's own
    [Stm.run]). Systematic exploration of arbitrary Jt programs is how
    [stm_run --explore] decides whether a program's printed outcome is
    schedule-dependent. *)
