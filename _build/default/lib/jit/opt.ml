open Stm_ir

type level = O0 | O1 | O2
type report = { immutable : int; escape : int; aggregated : int }

let reset prog =
  Ir.iter_methods prog (fun m ->
      Ir.iter_access_notes m (fun _ note ->
          note.Ir.barrier <- Ir.Bar_auto;
          note.Ir.txn_unlogged <- false))

let optimize level prog =
  match level with
  | O0 -> { immutable = 0; escape = 0; aggregated = 0 }
  | O1 ->
      let immutable = Immutable.run prog in
      let escape = Escape_intra.run prog in
      { immutable; escape; aggregated = 0 }
  | O2 ->
      let immutable = Immutable.run prog in
      let escape = Escape_intra.run prog in
      let aggregated = Aggregate.run prog in
      { immutable; escape; aggregated }

let level_name = function O0 -> "O0" | O1 -> "O1" | O2 -> "O2"
