(* Barrier elimination for immutable data (Section 6): loads of [final]
   fields never need an isolation barrier - their value cannot change
   after publication, so no transaction can conflict with the read.
   Array-length reads are handled structurally (the IR's [ALen] has no
   barrier at all). *)

open Stm_ir

let run (prog : Ir.program) =
  let removed = ref 0 in
  let remove (note : Ir.note) =
    match note.Ir.barrier with
    | Ir.Bar_auto ->
        note.Ir.barrier <- Ir.Bar_removed "immutable";
        incr removed
    | Ir.Bar_removed _ | Ir.Bar_agg_start _ | Ir.Bar_agg_member -> ()
  in
  Ir.iter_methods prog (fun m ->
      Array.iter
        (fun ins ->
          match ins with
          | Ir.Load { cls; fld; note; _ } -> (
              match Ir.instance_field_index prog cls fld with
              | _, f when f.Ir.f_final -> remove note
              | _ -> ()
              | exception Not_found -> ())
          | Ir.LoadS { cls; fld; note; _ } -> (
              match Ir.static_field_index prog cls fld with
              | _, _, f when f.Ir.f_final -> remove note
              | _ -> ()
              | exception Not_found -> ())
          | _ -> ())
        m.Ir.body);
  !removed
