(** Intraprocedural static escape analysis (paper Section 6).

    A forward must-be-local dataflow over each method: registers holding
    objects allocated in the method that have not escaped (through a heap
    store, call, builtin, return, or spawn) need no isolation barrier at
    their access sites. Aliases share the allocation identity, so an
    escape through any copy invalidates all of them. Accesses proven
    local are marked [Bar_removed "escape"]. *)

val run : Stm_ir.Ir.program -> int
(** Analyze and rewrite every method; returns the number of barriers
    removed. *)

val run_method : Stm_ir.Ir.meth -> int
(** Single-method entry point, for tests. *)
