(** Basic-block structure over IR method bodies, used by the JIT passes
    (Section 6). *)

type block = { start : int; stop : int }
(** Instructions [start .. stop - 1]. *)

type t = { blocks : block array; block_of : int array  (** pc -> block index *) }

val build : Stm_ir.Ir.meth -> t

val predecessors : Stm_ir.Ir.meth -> t -> int list array
(** Block-index predecessors of every block. *)

val successors : Stm_ir.Ir.meth -> t -> int list array
