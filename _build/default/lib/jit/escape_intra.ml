(* Intraprocedural static escape analysis (Section 6).

   A forward dataflow analysis per method: at each program point we track
   which registers definitely hold a thread-local object, as a map from
   register to the allocation (identified by the [new]'s pc) it came
   from. Copies share the allocation id, so when any alias escapes -
   stored into the heap, passed to a call or builtin, returned - every
   register holding the same allocation is invalidated together.

   Accesses through a register that is local at the access point need no
   isolation barrier. The merge is intersection on consistent bindings
   (must-be-local); the analysis iterates over the CFG to a fixpoint. *)

open Stm_ir
module IMap = Map.Make (Int)

(* locals : register -> allocation id (the pc of the New/NewArr) *)

let kill_alias locals id = IMap.filter (fun _ i -> i <> id) locals

let escape_operand locals = function
  | Ir.Reg r -> (
      match IMap.find_opt r locals with
      | Some id -> kill_alias locals id
      | None -> locals)
  | Ir.Cint _ | Ir.Cbool _ | Ir.Cstr _ | Ir.Cnull -> locals

let receiver_local locals = function
  | Ir.Reg r -> IMap.mem r locals
  | Ir.Cint _ | Ir.Cbool _ | Ir.Cstr _ | Ir.Cnull -> false

(* Transfer one instruction; [pc] identifies allocations. When [apply] is
   set, rewrite removable barrier notes. *)
let transfer ~apply (removed : int ref) pc locals ins =
  let maybe_remove (note : Ir.note) obj =
    if apply && receiver_local locals obj then
      match note.Ir.barrier with
      | Ir.Bar_auto ->
          note.Ir.barrier <- Ir.Bar_removed "escape";
          incr removed
      | Ir.Bar_removed _ | Ir.Bar_agg_start _ | Ir.Bar_agg_member -> ()
  in
  match ins with
  | Ir.New { dst; _ } | Ir.NewArr { dst; _ } -> IMap.add dst pc locals
  | Ir.Move (d, Ir.Reg s) -> (
      match IMap.find_opt s locals with
      | Some id -> IMap.add d id locals
      | None -> IMap.remove d locals)
  | Ir.Move (d, _) -> IMap.remove d locals
  | Ir.Unop (d, _, _) | Ir.Binop (d, _, _, _) | Ir.ALen (d, _) ->
      IMap.remove d locals
  | Ir.Load { dst; obj; note; _ } ->
      maybe_remove note obj;
      IMap.remove dst locals
  | Ir.Store { obj; src; note; _ } ->
      maybe_remove note obj;
      (* conservatively, a stored reference escapes even if the container
         is itself local (the container may escape later) *)
      escape_operand locals src
  | Ir.LoadS { dst; _ } -> IMap.remove dst locals
  | Ir.StoreS { src; _ } -> escape_operand locals src
  | Ir.ALoad { dst; arr; note; _ } ->
      maybe_remove note arr;
      IMap.remove dst locals
  | Ir.AStore { arr; src; note; _ } ->
      maybe_remove note arr;
      escape_operand locals src
  | Ir.Call { dst; this; args; _ } ->
      let s =
        match this with Some o -> escape_operand locals o | None -> locals
      in
      let s = List.fold_left escape_operand s args in
      (match dst with Some d -> IMap.remove d s | None -> s)
  | Ir.Builtin { dst; args; _ } ->
      let s = List.fold_left escape_operand locals args in
      (match dst with Some d -> IMap.remove d s | None -> s)
  | Ir.Ret (Some op) -> escape_operand locals op
  | Ir.Ret None | Ir.Nop | Ir.If _ | Ir.Goto _ | Ir.AtomicBegin _
  | Ir.AtomicEnd | Ir.MonitorEnter _ | Ir.MonitorExit _ | Ir.Print _
  | Ir.Retry ->
      locals

(* Must-be-local join: keep bindings present on all paths with the same
   allocation id. [None] means "not yet computed" (top). *)
let join a b =
  IMap.merge
    (fun _ x y ->
      match (x, y) with Some i, Some j when i = j -> Some i | _ -> None)
    a b

let run_method (m : Ir.meth) =
  let cfg = Cfg.build m in
  let nb = Array.length cfg.Cfg.blocks in
  if nb = 0 then 0
  else begin
    let preds = Cfg.predecessors m cfg in
    let inb = Array.make nb None in
    inb.(0) <- Some IMap.empty;
    let outb = Array.make nb None in
    let removed = ref 0 in
    let changed = ref true in
    while !changed do
      changed := false;
      for b = 0 to nb - 1 do
        let input =
          if b = 0 then Some IMap.empty
          else
            List.fold_left
              (fun acc p ->
                match (acc, outb.(p)) with
                | None, x | x, None -> x
                | Some a, Some o -> Some (join a o))
              None preds.(b)
        in
        match input with
        | None -> ()  (* unreachable so far *)
        | Some input ->
            inb.(b) <- Some input;
            let s = ref input in
            let blk = cfg.Cfg.blocks.(b) in
            for pc = blk.Cfg.start to blk.Cfg.stop - 1 do
              s := transfer ~apply:false removed pc !s m.Ir.body.(pc)
            done;
            let same =
              match outb.(b) with
              | Some o -> IMap.equal ( = ) o !s
              | None -> false
            in
            if not same then begin
              outb.(b) <- Some !s;
              changed := true
            end
      done
    done;
    (* application pass *)
    for b = 0 to nb - 1 do
      match inb.(b) with
      | None -> ()
      | Some input ->
          let s = ref input in
          let blk = cfg.Cfg.blocks.(b) in
          for pc = blk.Cfg.start to blk.Cfg.stop - 1 do
            s := transfer ~apply:true removed pc !s m.Ir.body.(pc)
          done
    done;
    !removed
  end

let run (prog : Ir.program) =
  let total = ref 0 in
  Ir.iter_methods prog (fun m -> total := !total + run_method m);
  !total
