lib/jit/aggregate.mli: Stm_ir
