lib/jit/cfg.ml: Array Ir List Stm_ir
