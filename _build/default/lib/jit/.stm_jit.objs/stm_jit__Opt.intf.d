lib/jit/opt.mli: Stm_ir
