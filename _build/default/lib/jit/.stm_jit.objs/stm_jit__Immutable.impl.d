lib/jit/immutable.ml: Array Ir Stm_ir
