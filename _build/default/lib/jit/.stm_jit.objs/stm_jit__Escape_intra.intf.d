lib/jit/escape_intra.mli: Stm_ir
