lib/jit/immutable.mli: Stm_ir
