lib/jit/aggregate.ml: Array Cfg Ir List Stm_ir
