lib/jit/opt.ml: Aggregate Escape_intra Immutable Ir Stm_ir
