lib/jit/cfg.mli: Stm_ir
