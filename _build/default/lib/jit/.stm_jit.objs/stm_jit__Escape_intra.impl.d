lib/jit/escape_intra.ml: Array Cfg Int Ir List Map Stm_ir
