(** Barrier elimination for immutable data (paper Section 6).

    Loads of [final] instance and static fields can never conflict with a
    transactional writer, so their isolation barriers are removed
    ([Bar_removed "immutable"]). Array-length reads are barrier-free
    structurally (the IR's [ALen] carries no note). Stores are left
    alone. *)

val run : Stm_ir.Ir.program -> int
(** Rewrite the notes; returns the number of barriers removed. *)
