(** Barrier aggregation (paper Section 6, Figure 14).

    Within a basic block, consecutive barrier-carrying accesses to the
    same object fold into one aggregated barrier: the first access
    acquires the record (exclusive-anonymous), the rest run as plain
    loads/stores, and the record is released with one version bump after
    the last. Groups never span blocks, calls, builtins, volatile
    accesses, accesses to other objects, or redefinitions of the receiver
    register, and only groups containing at least one write are
    aggregated (an acquire costs more than a read barrier). *)

val run : Stm_ir.Ir.program -> int
(** Rewrite the notes; returns the number of accesses folded into
    aggregated barriers (leaders + members). *)
