(* Barrier aggregation (Section 6, Figure 14).

   Within one basic block, consecutive barrier-carrying accesses to the
   same object (the same register, not redefined in between) are combined
   into a single aggregated barrier: the first access acquires the
   object's transaction record (exclusive-anonymous), the rest run as
   plain loads and stores, and the record is released - with a version
   bump - after the last one.

   Constraints (as in the paper, to keep the barrier finite and
   deadlock-free): a group never spans a basic block, a call, a builtin,
   an access to a different object that itself needs a barrier, a
   volatile field, or a redefinition of the receiver register. *)

open Stm_ir

let is_volatile prog ins =
  match ins with
  | Ir.Load { cls; fld; _ } | Ir.Store { cls; fld; _ } -> (
      match Ir.instance_field_index prog cls fld with
      | _, f -> f.Ir.f_volatile
      | exception Not_found -> false)
  | Ir.LoadS { cls; fld; _ } | Ir.StoreS { cls; fld; _ } -> (
      match Ir.static_field_index prog cls fld with
      | _, _, f -> f.Ir.f_volatile
      | exception Not_found -> false)
  | _ -> false

(* The receiver register of a barrier-carrying access, with its note and
   whether it writes. Static accesses are excluded: their receiver (the
   statics holder) is not named by a register, so grouping them would need
   a different key - we follow Figure 14 and aggregate only object/array
   accesses. *)
let barrier_access ins =
  match ins with
  | Ir.Load { obj = Ir.Reg r; note; _ } | Ir.ALoad { arr = Ir.Reg r; note; _ }
    ->
      Some (r, note, false)
  | Ir.Store { obj = Ir.Reg r; note; _ }
  | Ir.AStore { arr = Ir.Reg r; note; _ } ->
      Some (r, note, true)
  | _ -> None

let defined_reg = function
  | Ir.Move (d, _) | Ir.Unop (d, _, _) | Ir.Binop (d, _, _, _)
  | Ir.New { dst = d; _ }
  | Ir.NewArr { dst = d; _ }
  | Ir.Load { dst = d; _ }
  | Ir.LoadS { dst = d; _ }
  | Ir.ALoad { dst = d; _ }
  | Ir.ALen (d, _) ->
      Some d
  | Ir.Call { dst; _ } | Ir.Builtin { dst; _ } -> dst
  | Ir.Store _ | Ir.StoreS _ | Ir.AStore _ | Ir.Nop | Ir.If _ | Ir.Goto _
  | Ir.Ret _ | Ir.AtomicBegin _ | Ir.AtomicEnd | Ir.MonitorEnter _
  | Ir.MonitorExit _ | Ir.Print _ | Ir.Retry ->
      None

(* Does this instruction end any open group? *)
let group_breaker = function
  | Ir.Call _ | Ir.Builtin _ -> true
  | _ -> false

let run_block prog (m : Ir.meth) (blk : Cfg.block) =
  let aggregated = ref 0 in
  (* current group: receiver register + collected (note, is_write),
     reversed *)
  let cur : (int * (Ir.note * bool) list) option ref = ref None in
  let close () =
    (match !cur with
    | Some (_, members)
      when List.length members >= 2 && List.exists snd members ->
        (* only aggregate groups that contain a write: the acquire is
           itself a priced atomic operation, so folding pure reads into
           one would cost more than their individual read barriers *)
        let n = List.length members in
        let members = List.rev members in
        List.iteri
          (fun i ((note : Ir.note), _) ->
            note.Ir.barrier <-
              (if i = 0 then Ir.Bar_agg_start n else Ir.Bar_agg_member))
          members;
        aggregated := !aggregated + n
    | _ -> ());
    cur := None
  in
  for pc = blk.Cfg.start to blk.Cfg.stop - 1 do
    let ins = m.Ir.body.(pc) in
    if group_breaker ins then close ()
    else begin
      (match barrier_access ins with
      | Some (r, note, w) when note.Ir.barrier = Ir.Bar_auto
                               && not (is_volatile prog ins) -> (
          match !cur with
          | Some (r', members) when r' = r ->
              cur := Some (r, (note, w) :: members)
          | Some _ ->
              close ();
              cur := Some (r, [ (note, w) ])
          | None -> cur := Some (r, [ (note, w) ]))
      | Some (_, _, _) ->
          (* a barrier access we cannot fold (volatile or already
             removed): removed accesses touch no record and may sit
             outside the group; volatiles end it *)
          if is_volatile prog ins then close ()
      | None -> ());
      (* a redefinition of the receiver register ends the group *)
      match (defined_reg ins, !cur) with
      | Some d, Some (r, _) when d = r -> close ()
      | _ -> ()
    end
  done;
  close ();
  !aggregated

let run (prog : Ir.program) =
  let total = ref 0 in
  Ir.iter_methods prog (fun m ->
      let cfg = Cfg.build m in
      Array.iter (fun blk -> total := !total + run_block prog m blk) cfg.Cfg.blocks);
  !total
