(** JIT optimization driver (paper Section 6 / Figure 15 legend).

    Optimization levels accumulate exactly like the paper's bars:
    - [O0] — "No Opts": every access site keeps its configured barrier.
    - [O1] — "Barrier Elim": immutability-based elimination plus
      intraprocedural static escape analysis.
    - [O2] — "+ Barrier Aggr": adds basic-block barrier aggregation.

    Dynamic escape analysis ("+ DEA") is a runtime mechanism and is
    selected in {!Stm_core.Config.t}; whole-program optimizations
    ("+ Whole-Prog Opts") live in [stm_analysis] ({!Stm_analysis.Nait},
    {!Stm_analysis.Thread_local}). All passes rewrite the barrier notes of
    the program in place; {!reset} restores every note to [Bar_auto]. *)

type level = O0 | O1 | O2

type report = {
  immutable : int;
  escape : int;
  aggregated : int;  (** accesses folded into aggregated barriers *)
}

val optimize : level -> Stm_ir.Ir.program -> report
val reset : Stm_ir.Ir.program -> unit
val level_name : level -> string
