open Stm_ir

type block = { start : int; stop : int }
type t = { blocks : block array; block_of : int array }

(* Instructions that end a basic block (control may not fall through, or
   transfers elsewhere). Atomic markers end blocks so that aggregated
   barriers never span a transaction boundary. *)
let ends_block = function
  | Ir.If _ | Ir.Goto _ | Ir.Ret _ | Ir.Retry | Ir.AtomicBegin _
  | Ir.AtomicEnd | Ir.MonitorEnter _ | Ir.MonitorExit _ ->
      true
  | Ir.Nop | Ir.Move _ | Ir.Unop _ | Ir.Binop _ | Ir.New _ | Ir.NewArr _
  | Ir.Load _ | Ir.Store _ | Ir.LoadS _ | Ir.StoreS _ | Ir.ALoad _
  | Ir.AStore _ | Ir.ALen _ | Ir.Call _ | Ir.Builtin _ | Ir.Print _ ->
      false

let build (m : Ir.meth) =
  let n = Array.length m.Ir.body in
  let leader = Array.make (max n 1) false in
  if n > 0 then leader.(0) <- true;
  Array.iteri
    (fun pc ins ->
      (match ins with
      | Ir.If (_, t) | Ir.Goto t | Ir.AtomicBegin t ->
          if t < n then leader.(t) <- true
      | _ -> ());
      if ends_block ins && pc + 1 < n then leader.(pc + 1) <- true)
    m.Ir.body;
  let starts = ref [] in
  for pc = n - 1 downto 0 do
    if leader.(pc) then starts := pc :: !starts
  done;
  let starts = Array.of_list !starts in
  let nb = Array.length starts in
  let blocks =
    Array.init nb (fun i ->
        { start = starts.(i); stop = (if i + 1 < nb then starts.(i + 1) else n) })
  in
  let block_of = Array.make (max n 1) 0 in
  Array.iteri
    (fun i b ->
      for pc = b.start to b.stop - 1 do
        block_of.(pc) <- i
      done)
    blocks;
  { blocks; block_of }

let successors (m : Ir.meth) t =
  let n = Array.length m.Ir.body in
  let nb = Array.length t.blocks in
  let succ = Array.make nb [] in
  Array.iteri
    (fun i (b : block) ->
      if b.stop > b.start then begin
        let last = m.Ir.body.(b.stop - 1) in
        let add pc = if pc < n then succ.(i) <- t.block_of.(pc) :: succ.(i) in
        match last with
        | Ir.Goto target -> add target
        | Ir.If (_, target) ->
            add target;
            add b.stop
        | Ir.Ret _ -> ()
        | Ir.Retry -> ()
        | _ -> add b.stop
      end)
    t.blocks;
  succ

let predecessors m t =
  let succ = successors m t in
  let nb = Array.length t.blocks in
  let pred = Array.make nb [] in
  Array.iteri (fun i ss -> List.iter (fun s -> pred.(s) <- i :: pred.(s)) ss) succ;
  pred
