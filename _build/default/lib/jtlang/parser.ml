(* Recursive-descent parser for Jt. *)

open Ast

exception Error of string * int

let fail lx msg = raise (Error (msg, Lexer.line lx))

let expect_punct lx p =
  match Lexer.peek lx with
  | Lexer.PUNCT q when q = p -> Lexer.advance lx
  | t -> fail lx (Printf.sprintf "expected '%s', found %s" p (Lexer.describe t))

let expect_kw lx k =
  match Lexer.peek lx with
  | Lexer.KW q when q = k -> Lexer.advance lx
  | t -> fail lx (Printf.sprintf "expected '%s', found %s" k (Lexer.describe t))

let expect_ident lx =
  match Lexer.peek lx with
  | Lexer.IDENT s ->
      Lexer.advance lx;
      s
  | t -> fail lx ("expected identifier, found " ^ Lexer.describe t)

let eat_punct lx p =
  match Lexer.peek lx with
  | Lexer.PUNCT q when q = p ->
      Lexer.advance lx;
      true
  | _ -> false

let eat_kw lx k =
  match Lexer.peek lx with
  | Lexer.KW q when q = k ->
      Lexer.advance lx;
      true
  | _ -> false

(* type := base ("[" "]")* ; base := int|bool|str|void|Ident *)
let rec parse_type lx =
  let base =
    match Lexer.peek lx with
    | Lexer.KW "int" -> Lexer.advance lx; Tint
    | Lexer.KW "bool" -> Lexer.advance lx; Tbool
    | Lexer.KW "str" -> Lexer.advance lx; Tstr
    | Lexer.KW "void" -> Lexer.advance lx; Tvoid
    | Lexer.IDENT c -> Lexer.advance lx; Tname c
    | t -> fail lx ("expected type, found " ^ Lexer.describe t)
  in
  parse_array_suffix lx base

and parse_array_suffix lx base =
  if Lexer.peek lx = Lexer.PUNCT "[" && Lexer.peek2 lx = Lexer.PUNCT "]" then begin
    Lexer.advance lx;
    Lexer.advance lx;
    parse_array_suffix lx (Tarr base)
  end
  else base

(* Is a type at the current position (for distinguishing declarations from
   expressions)? Heuristic: primitive keyword, or Ident followed by Ident,
   or Ident [ ] . *)
let at_decl lx =
  match Lexer.peek lx with
  | Lexer.KW ("int" | "bool" | "str") -> true
  | Lexer.IDENT _ -> (
      match Lexer.peek2 lx with
      | Lexer.IDENT _ -> true
      | Lexer.PUNCT "[" ->
          (* Ident [ ] id  vs  Ident [ expr ] =  : look one more ahead *)
          lx.Lexer.pos + 2 < Array.length lx.Lexer.toks
          && fst lx.Lexer.toks.(lx.Lexer.pos + 2) = Lexer.PUNCT "]"
      | _ -> false)
  | _ -> false

let rec parse_expr lx = parse_or lx

and parse_or lx =
  let l = parse_and lx in
  if eat_punct lx "||" then
    let r = parse_or lx in
    { e = Ebin (Or, l, r); eline = l.eline }
  else l

and parse_and lx =
  let l = parse_eq lx in
  if eat_punct lx "&&" then
    let r = parse_and lx in
    { e = Ebin (And, l, r); eline = l.eline }
  else l

and parse_eq lx =
  let l = parse_rel lx in
  if eat_punct lx "==" then
    let r = parse_rel lx in
    { e = Ebin (Eq, l, r); eline = l.eline }
  else if eat_punct lx "!=" then
    let r = parse_rel lx in
    { e = Ebin (Ne, l, r); eline = l.eline }
  else l

and parse_rel lx =
  let l = parse_add lx in
  let op =
    match Lexer.peek lx with
    | Lexer.PUNCT "<" -> Some Lt
    | Lexer.PUNCT "<=" -> Some Le
    | Lexer.PUNCT ">" -> Some Gt
    | Lexer.PUNCT ">=" -> Some Ge
    | _ -> None
  in
  match op with
  | Some op ->
      Lexer.advance lx;
      let r = parse_add lx in
      { e = Ebin (op, l, r); eline = l.eline }
  | None -> l

and parse_add lx =
  let rec go l =
    if eat_punct lx "+" then
      let r = parse_mul lx in
      go { e = Ebin (Add, l, r); eline = l.eline }
    else if eat_punct lx "-" then
      let r = parse_mul lx in
      go { e = Ebin (Sub, l, r); eline = l.eline }
    else l
  in
  go (parse_mul lx)

and parse_mul lx =
  let rec go l =
    if eat_punct lx "*" then
      let r = parse_unary lx in
      go { e = Ebin (Mul, l, r); eline = l.eline }
    else if eat_punct lx "/" then
      let r = parse_unary lx in
      go { e = Ebin (Div, l, r); eline = l.eline }
    else if eat_punct lx "%" then
      let r = parse_unary lx in
      go { e = Ebin (Mod, l, r); eline = l.eline }
    else l
  in
  go (parse_unary lx)

and parse_unary lx =
  let line = Lexer.line lx in
  if eat_punct lx "-" then
    let e = parse_unary lx in
    { e = Eun (Neg, e); eline = line }
  else if eat_punct lx "!" then
    let e = parse_unary lx in
    { e = Eun (Not, e); eline = line }
  else parse_postfix lx

and parse_postfix lx =
  let rec go recv =
    if eat_punct lx "." then begin
      let name = expect_ident lx in
      if name = "length" then go { e = Elen recv; eline = recv.eline }
      else if Lexer.peek lx = Lexer.PUNCT "(" then begin
        let args = parse_args lx in
        go { e = Ecall (Some recv, name, args); eline = recv.eline }
      end
      else go { e = Efield (recv, name); eline = recv.eline }
    end
    else if Lexer.peek lx = Lexer.PUNCT "[" then begin
      Lexer.advance lx;
      let idx = parse_expr lx in
      expect_punct lx "]";
      go { e = Eindex (recv, idx); eline = recv.eline }
    end
    else recv
  in
  go (parse_primary lx)

and parse_args lx =
  expect_punct lx "(";
  if eat_punct lx ")" then []
  else begin
    let rec go acc =
      let e = parse_expr lx in
      if eat_punct lx "," then go (e :: acc)
      else begin
        expect_punct lx ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_primary lx =
  let line = Lexer.line lx in
  match Lexer.peek lx with
  | Lexer.INT n ->
      Lexer.advance lx;
      { e = Eint n; eline = line }
  | Lexer.STR s ->
      Lexer.advance lx;
      { e = Estr s; eline = line }
  | Lexer.KW "true" ->
      Lexer.advance lx;
      { e = Ebool true; eline = line }
  | Lexer.KW "false" ->
      Lexer.advance lx;
      { e = Ebool false; eline = line }
  | Lexer.KW "null" ->
      Lexer.advance lx;
      { e = Enull; eline = line }
  | Lexer.KW "this" ->
      Lexer.advance lx;
      { e = Ethis; eline = line }
  | Lexer.KW "new" -> (
      Lexer.advance lx;
      let base = parse_type lx in
      match Lexer.peek lx with
      | Lexer.PUNCT "(" ->
          expect_punct lx "(";
          expect_punct lx ")";
          let cls =
            match base with
            | Tname c -> c
            | _ -> fail lx "can only 'new' a class type"
          in
          { e = Enew cls; eline = line }
      | Lexer.PUNCT "[" ->
          Lexer.advance lx;
          let len = parse_expr lx in
          expect_punct lx "]";
          (* trailing [] pairs make multi-dimensional element types *)
          let elt = parse_array_suffix lx base in
          { e = Enewarr (elt, len); eline = line }
      | t -> fail lx ("expected '(' or '[' after new, found " ^ Lexer.describe t))
  | Lexer.PUNCT "(" ->
      Lexer.advance lx;
      let e = parse_expr lx in
      expect_punct lx ")";
      e
  | Lexer.IDENT name ->
      Lexer.advance lx;
      if Lexer.peek lx = Lexer.PUNCT "(" then
        let args = parse_args lx in
        { e = Ecall (None, name, args); eline = line }
      else { e = Evar name; eline = line }
  | t -> fail lx ("expected expression, found " ^ Lexer.describe t)

(* Convert an already-parsed expression to an lvalue. *)
let lvalue_of_expr lx (e : expr) =
  match e.e with
  | Evar v -> Lvar v
  | Efield (r, f) -> Lfield (r, f)
  | Eindex (a, i) -> Lindex (a, i)
  | _ -> fail lx "invalid assignment target"

let rec parse_block lx =
  expect_punct lx "{";
  let rec go acc =
    if eat_punct lx "}" then List.rev acc else go (parse_stmt lx :: acc)
  in
  go []

(* A "simple statement" without trailing ';' — used in for-headers. *)
and parse_simple lx =
  let line = Lexer.line lx in
  if at_decl lx then begin
    let ty = parse_type lx in
    let name = expect_ident lx in
    let init = if eat_punct lx "=" then Some (parse_expr lx) else None in
    { s = Sdecl (ty, name, init); sline = line }
  end
  else begin
    let e = parse_expr lx in
    match Lexer.peek lx with
    | Lexer.PUNCT "=" ->
        Lexer.advance lx;
        let rhs = parse_expr lx in
        { s = Sassign (lvalue_of_expr lx e, rhs); sline = line }
    | Lexer.PUNCT (("+=" | "-=" | "*=" | "/=") as op) ->
        Lexer.advance lx;
        let rhs = parse_expr lx in
        let bop =
          match op with
          | "+=" -> Add
          | "-=" -> Sub
          | "*=" -> Mul
          | _ -> Div
        in
        let combined = { e = Ebin (bop, e, rhs); eline = line } in
        { s = Sassign (lvalue_of_expr lx e, combined); sline = line }
    | Lexer.PUNCT "++" ->
        Lexer.advance lx;
        let one = { e = Eint 1; eline = line } in
        let combined = { e = Ebin (Add, e, one); eline = line } in
        { s = Sassign (lvalue_of_expr lx e, combined); sline = line }
    | Lexer.PUNCT "--" ->
        Lexer.advance lx;
        let one = { e = Eint 1; eline = line } in
        let combined = { e = Ebin (Sub, e, one); eline = line } in
        { s = Sassign (lvalue_of_expr lx e, combined); sline = line }
    | _ -> { s = Sexpr e; sline = line }
  end

and parse_stmt lx =
  let line = Lexer.line lx in
  match Lexer.peek lx with
  | Lexer.PUNCT "{" -> { s = Sblock (parse_block lx); sline = line }
  | Lexer.KW "if" ->
      Lexer.advance lx;
      expect_punct lx "(";
      let c = parse_expr lx in
      expect_punct lx ")";
      let thn = parse_block lx in
      let els =
        if eat_kw lx "else" then
          if Lexer.peek lx = Lexer.KW "if" then Some [ parse_stmt lx ]
          else Some (parse_block lx)
        else None
      in
      { s = Sif (c, thn, els); sline = line }
  | Lexer.KW "while" ->
      Lexer.advance lx;
      expect_punct lx "(";
      let c = parse_expr lx in
      expect_punct lx ")";
      let body = parse_block lx in
      { s = Swhile (c, body); sline = line }
  | Lexer.KW "for" ->
      Lexer.advance lx;
      expect_punct lx "(";
      let init =
        if Lexer.peek lx = Lexer.PUNCT ";" then None else Some (parse_simple lx)
      in
      expect_punct lx ";";
      let cond =
        if Lexer.peek lx = Lexer.PUNCT ";" then None else Some (parse_expr lx)
      in
      expect_punct lx ";";
      let step =
        if Lexer.peek lx = Lexer.PUNCT ")" then None else Some (parse_simple lx)
      in
      expect_punct lx ")";
      let body = parse_block lx in
      { s = Sfor (init, cond, step, body); sline = line }
  | Lexer.KW "return" ->
      Lexer.advance lx;
      if eat_punct lx ";" then { s = Sreturn None; sline = line }
      else begin
        let e = parse_expr lx in
        expect_punct lx ";";
        { s = Sreturn (Some e); sline = line }
      end
  | Lexer.KW "atomic" ->
      Lexer.advance lx;
      { s = Satomic (parse_block lx); sline = line }
  | Lexer.KW "synchronized" ->
      Lexer.advance lx;
      expect_punct lx "(";
      let e = parse_expr lx in
      expect_punct lx ")";
      { s = Ssync (e, parse_block lx); sline = line }
  | _ ->
      let s = parse_simple lx in
      expect_punct lx ";";
      s

let parse_member lx =
  let line = Lexer.line lx in
  let m_static = ref false and m_final = ref false and m_volatile = ref false in
  let rec mods () =
    if eat_kw lx "static" then (m_static := true; mods ())
    else if eat_kw lx "final" then (m_final := true; mods ())
    else if eat_kw lx "volatile" then (m_volatile := true; mods ())
  in
  mods ();
  let ty = parse_type lx in
  let name = expect_ident lx in
  if Lexer.peek lx = Lexer.PUNCT "(" then begin
    (* method *)
    expect_punct lx "(";
    let params =
      if eat_punct lx ")" then []
      else begin
        let rec go acc =
          let pty = parse_type lx in
          let pname = expect_ident lx in
          if eat_punct lx "," then go ((pty, pname) :: acc)
          else begin
            expect_punct lx ")";
            List.rev ((pty, pname) :: acc)
          end
        in
        go []
      end
    in
    let body = parse_block lx in
    Mmethod { ret = ty; mname = name; m_static = !m_static; params; body; line }
  end
  else begin
    let finit = if eat_punct lx "=" then Some (parse_expr lx) else None in
    expect_punct lx ";";
    Mfield
      {
        fty = ty;
        fname = name;
        f_static = !m_static;
        f_final = !m_final;
        f_volatile = !m_volatile;
        finit;
        line;
      }
  end

let parse_class lx =
  let line = Lexer.line lx in
  expect_kw lx "class";
  let cname = expect_ident lx in
  let super = if eat_kw lx "extends" then Some (expect_ident lx) else None in
  expect_punct lx "{";
  let rec go acc =
    if eat_punct lx "}" then List.rev acc else go (parse_member lx :: acc)
  in
  let members = go [] in
  { cname; super; members; cline = line }

let parse_program lx =
  let rec go acc =
    match Lexer.peek lx with
    | Lexer.EOF -> List.rev acc
    | _ -> go (parse_class lx :: acc)
  in
  go []

let parse ?(name = "<jt>") src =
  let lx = Lexer.tokenize name src in
  parse_program lx
