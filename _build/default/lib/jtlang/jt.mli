(** Front end for Jt, the Java-like surface language with [atomic] and
    [synchronized] blocks.

    Jt stands in for the paper's Java: classes with (static / final /
    volatile) fields and methods, single inheritance, arrays, threads
    ([class W extends Thread] with a [run] method, [spawn(obj)] /
    [join(tid)]), [atomic { ... }] transactions and
    [synchronized (obj) { ... }] critical sections. See the grammar
    comment in [parser.ml] and the example programs under [examples/] and
    [lib/workloads/]. *)

exception Error of string * int
(** Compilation error with a message and a 1-based source line. *)

val compile : ?name:string -> string -> Stm_ir.Ir.program
(** Parse and lower a Jt source string. *)

val parse : ?name:string -> string -> Ast.program
(** Parse only (for front-end tests). *)
