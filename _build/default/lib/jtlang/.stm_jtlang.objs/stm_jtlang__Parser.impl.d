lib/jtlang/parser.ml: Array Ast Lexer List Printf
