lib/jtlang/lexer.ml: Array Buffer List Printf String
