lib/jtlang/jt.mli: Ast Stm_ir
