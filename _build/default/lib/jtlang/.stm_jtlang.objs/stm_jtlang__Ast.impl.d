lib/jtlang/ast.ml:
