lib/jtlang/lower.ml: Array Ast Fmt Hashtbl Ir List Option Printf Stm_ir
