lib/jtlang/jt.ml: Lexer Lower Parser
