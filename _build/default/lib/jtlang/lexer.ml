(* Hand-written lexer for Jt. *)

type token =
  | INT of int
  | STR of string
  | IDENT of string
  | KW of string  (* keywords *)
  | PUNCT of string  (* operators and punctuation *)
  | EOF

type t = { name : string; toks : (token * int) array; mutable pos : int }

exception Error of string * int

let keywords =
  [
    "class"; "extends"; "static"; "final"; "volatile"; "void"; "int"; "bool";
    "str"; "if"; "else"; "while"; "for"; "return"; "atomic"; "synchronized";
    "new"; "null"; "true"; "false"; "this";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize name src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push tok = toks := (tok, !line) :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let fin = ref false in
      while not !fin do
        if !i + 1 >= n then raise (Error ("unterminated comment", !line));
        if src.[!i] = '\n' then incr line;
        if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          i := !i + 2;
          fin := true
        end
        else incr i
      done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      push (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      let s = String.sub src start (!i - start) in
      if List.mem s keywords then push (KW s) else push (IDENT s)
    end
    else if c = '"' then begin
      incr i;
      let b = Buffer.create 16 in
      let fin = ref false in
      while not !fin do
        if !i >= n then raise (Error ("unterminated string", !line));
        (match src.[!i] with
        | '"' -> fin := true
        | '\\' when !i + 1 < n ->
            incr i;
            Buffer.add_char b
              (match src.[!i] with
              | 'n' -> '\n'
              | 't' -> '\t'
              | ch -> ch)
        | ch -> Buffer.add_char b ch);
        incr i
      done;
      push (STR (Buffer.contents b))
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some (("=="|"!="|"<="|">="|"&&"|"||"|"+="|"-="|"*="|"/="|"++"|"--") as op) ->
          push (PUNCT op);
          i := !i + 2
      | _ -> (
          match c with
          | '{' | '}' | '(' | ')' | '[' | ']' | ';' | ',' | '.' | '+' | '-'
          | '*' | '/' | '%' | '<' | '>' | '=' | '!' ->
              push (PUNCT (String.make 1 c));
              incr i
          | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, !line)))
    end
  done;
  push EOF;
  { name; toks = Array.of_list (List.rev !toks); pos = 0 }

let peek lx = fst lx.toks.(lx.pos)
let peek2 lx = if lx.pos + 1 < Array.length lx.toks then fst lx.toks.(lx.pos + 1) else EOF
let line lx = snd lx.toks.(lx.pos)
let advance lx = if lx.pos < Array.length lx.toks - 1 then lx.pos <- lx.pos + 1

let describe = function
  | INT n -> string_of_int n
  | STR s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> Printf.sprintf "'%s'" s
  | EOF -> "<eof>"
