(* Surface AST for Jt, the small Java-like language with [atomic] blocks.
   Positions are line numbers into the source string. *)

type ty = Tint | Tbool | Tstr | Tvoid | Tname of string | Tarr of ty

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type unop = Neg | Not

type expr = { e : expr_node; eline : int }

and expr_node =
  | Eint of int
  | Ebool of bool
  | Estr of string
  | Enull
  | Ethis
  | Evar of string
  | Ebin of binop * expr * expr
  | Eun of unop * expr
  | Efield of expr * string  (* also [C.f]: receiver is Evar "C" *)
  | Eindex of expr * expr
  | Elen of expr
  | Ecall of expr option * string * expr list
      (* receiver (None = same-class or builtin), name, args *)
  | Enew of string
  | Enewarr of ty * expr

type lvalue =
  | Lvar of string
  | Lfield of expr * string
  | Lindex of expr * expr

type stmt = { s : stmt_node; sline : int }

and stmt_node =
  | Sdecl of ty * string * expr option
  | Sassign of lvalue * expr
  | Sif of expr * block * block option
  | Swhile of expr * block
  | Sfor of stmt option * expr option * stmt option * block
  | Sreturn of expr option
  | Sexpr of expr
  | Satomic of block
  | Ssync of expr * block
  | Sblock of block

and block = stmt list

type member =
  | Mfield of {
      fty : ty;
      fname : string;
      f_static : bool;
      f_final : bool;
      f_volatile : bool;
      finit : expr option;
      line : int;
    }
  | Mmethod of {
      ret : ty;
      mname : string;
      m_static : bool;
      params : (ty * string) list;
      body : block;
      line : int;
    }

type cls = {
  cname : string;
  super : string option;
  members : member list;
  cline : int;
}

type program = cls list
