lib/harness/ablations.ml: Config Fmt Jbb Jvm98 List Oo7 Printexc Stats Stm Stm_analysis Stm_core Stm_ir Stm_runtime Stm_workloads Tsp Workload
