lib/harness/figures.ml: Config Dump Fmt Hashtbl Jbb Jvm98 List Oo7 Printexc Stm_analysis Stm_core Stm_ir Stm_jit Stm_litmus Stm_runtime Stm_workloads Tsp Workload
