lib/harness/figures.mli: Format Stm_analysis Stm_litmus
