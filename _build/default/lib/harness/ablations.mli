(** Ablation studies for the design choices DESIGN.md calls out.

    Each returns labelled (configuration, simulated cycles) pairs on a
    fixed workload, so the cost or benefit of one mechanism is isolated. *)

type row = { label : string; cycles : int; note : string }

val dea_read_privacy : ?scale:float -> unit -> row list
(** The optional private-object fast path in the read barrier
    (Figure 10a's italicized instructions): compress under strong+DEA
    with and without the read-barrier privacy check. *)

val quiescence_cost : unit -> row list
(** What the Section 3.4 quiescence commit protocol costs on a
    transaction-heavy workload (OO7), compared to plain weak atomicity
    and to strong atomicity. *)

val txn_read_removal : unit -> row list
(** The Section 5.2 extension: Tsp under weak atomicity with and without
    transactional open-for-read barrier removal. *)

val versioning_granularity : ?scale:float -> unit -> row list
(** Undo-log/copy granularity (Section 2.4): JBB under weak-eager with
    granule 1, 2 and 4 (coarser granules snapshot more per write). *)

val contention_management : unit -> row list
(** Transaction-vs-transaction conflict resolution: the McRT suicide
    policy (back off, abort self after the retry budget) against
    wound-wait (older kills younger), on a high-contention counter. *)

val pp : Format.formatter -> row list -> unit
