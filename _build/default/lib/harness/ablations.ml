open Stm_core
open Stm_workloads

type row = { label : string; cycles : int; note : string }

let run_raw ?(extra = []) prog (w : Workload.t) cfg =
  let out =
    Stm_ir.Interp.run ~cfg ~params:(extra @ w.Workload.params) prog
  in
  (match out.Stm_ir.Interp.result.Stm_runtime.Sched.exns with
  | [] -> ()
  | (tid, e) :: _ ->
      Fmt.failwith "ablation %s: thread %d raised %s" w.Workload.name tid
        (Printexc.to_string e));
  out

let dea_read_privacy ?(scale = 1.0) () =
  let w = Workload.scaled Jvm98.compress scale in
  let measure cfg =
    let prog = Workload.program w in
    (run_raw prog w cfg).Stm_ir.Interp.result.Stm_runtime.Sched.makespan
  in
  let base = Config.(with_dea eager_strong) in
  [
    {
      label = "strong+dea, privacy check in read barrier";
      cycles = measure base;
      note = "private reads skip validation (Fig 10a fast path)";
    };
    {
      label = "strong+dea, no read privacy check";
      cycles = measure { base with Config.read_privacy_check = false };
      note = "private reads still run the full two-load validation";
    };
    {
      label = "strong, no dea at all";
      cycles = measure Config.eager_strong;
      note = "every barrier synchronizes";
    };
  ]

let quiescence_cost () =
  let w = Oo7.oo7 in
  let measure cfg =
    let prog = Workload.program w in
    (run_raw ~extra:[ ("threads", 8); ("use_locks", 0) ] prog w cfg)
      .Stm_ir.Interp.result.Stm_runtime.Sched.makespan
  in
  [
    {
      label = "weak atomicity";
      cycles = measure Config.eager_weak;
      note = "no privatization safety";
    };
    {
      label = "weak + quiescence";
      cycles = measure Config.(with_quiescence eager_weak);
      note = "commits wait for concurrent txns to reach consistency";
    };
    {
      label = "strong atomicity";
      cycles = measure Config.eager_strong;
      note = "full isolation via barriers";
    };
  ]

let txn_read_removal () =
  let w = Tsp.tsp in
  let measure ~remove =
    let prog = Workload.program w in
    if remove then begin
      let pta = Stm_analysis.Pta.analyze prog in
      ignore (Stm_analysis.Nait.apply_txn_reads prog pta : int)
    end;
    let out =
      run_raw ~extra:[ ("threads", 4); ("use_locks", 0) ] prog w
        Config.eager_weak
    in
    ( out.Stm_ir.Interp.result.Stm_runtime.Sched.makespan,
      out.Stm_ir.Interp.stats.Stats.txn_reads )
  in
  let c0, r0 = measure ~remove:false in
  let c1, r1 = measure ~remove:true in
  [
    {
      label = "weak, all txn reads logged";
      cycles = c0;
      note = Fmt.str "%d open-for-read barriers executed" r0;
    };
    {
      label = "weak + 5.2 txn-read removal";
      cycles = c1;
      note = Fmt.str "%d open-for-read barriers executed" r1;
    };
  ]

let versioning_granularity ?(scale = 1.0) () =
  (* granularity only matters for transactional undo/copy, so measure a
     transaction-heavy workload *)
  let w = Workload.scaled Jbb.jbb scale in
  let measure granule =
    let prog = Workload.program w in
    (run_raw ~extra:[ ("threads", 4); ("use_locks", 0) ] prog w
       Config.(with_granule granule eager_weak))
      .Stm_ir.Interp.result.Stm_runtime.Sched.makespan
  in
  List.map
    (fun g ->
      {
        label = Fmt.str "weak-eager, granule %d (jbb, 4 threads)" g;
        cycles = measure g;
        note =
          (if g = 1 then "exact field granularity (anomaly-free)"
           else "coarse granules: GLU/GIR possible, bigger undo copies");
      })
    [ 1; 2; 4 ]

let contention_management () =
  let measure cfg =
    let result, stats =
      Stm.run ~cfg (fun () ->
          let o = Stm.alloc_public ~cls:"Ctr" 1 in
          Stm.write o 0 (Stm.vint 0);
          let worker () =
            for _ = 1 to 40 do
              Stm.atomic (fun () ->
                  Stm.write o 0 (Stm.vint (Stm.to_int (Stm.read o 0) + 1)))
            done
          in
          let ts = List.init 8 (fun _ -> Stm_runtime.Sched.spawn worker) in
          List.iter Stm_runtime.Sched.join ts;
          assert (Stm.to_int (Stm.read o 0) = 320))
    in
    (result.Stm_runtime.Sched.makespan, stats)
  in
  let c0, s0 = measure Config.eager_weak in
  let c1, s1 = measure Config.(with_wound_wait eager_weak) in
  [
    {
      label = "suicide (McRT default), hot counter x8 threads";
      cycles = c0;
      note = Fmt.str "%d aborts" s0.Stats.aborts;
    };
    {
      label = "wound-wait, hot counter x8 threads";
      cycles = c1;
      note = Fmt.str "%d aborts, %d wounds" s1.Stats.aborts s1.Stats.wounds;
    };
  ]

let pp ppf rows =
  List.iter
    (fun r -> Fmt.pf ppf "%-46s %10d cycles   %s@." r.label r.cycles r.note)
    rows
