(* Oracle tests: check benchmark outputs against independent OCaml
   reimplementations of the same computation. *)

open Stm_workloads

let check_int = Alcotest.(check int)

(* The same deterministic hash the interpreter's builtin uses. *)
let jt_hash x =
  let h = x * 0x9E3779B1 land max_int in
  h lxor (h lsr 16)

(* Reconstruct Tsp's distance matrix exactly as the Jt source does. *)
let tsp_matrix n =
  let d = Array.make (n * n) 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let h = jt_hash ((min i j * n) + max i j) in
        d.((i * n) + j) <- 10 + (abs h mod 90)
      end
    done
  done;
  d

(* Exact TSP by exhaustive permutation search. *)
let tsp_bruteforce n =
  let d = tsp_matrix n in
  let best = ref max_int in
  let visited = Array.make n false in
  visited.(0) <- true;
  let rec go depth last len =
    if len < !best then
      if depth = n then best := min !best (len + d.((last * n) + 0))
      else
        for c = 1 to n - 1 do
          if not visited.(c) then begin
            visited.(c) <- true;
            go (depth + 1) c (len + d.((last * n) + c));
            visited.(c) <- false
          end
        done
  in
  go 1 0 0;
  !best

let tsp_against_bruteforce cfg_name cfg nthreads () =
  let n = 7 in
  let expected = tsp_bruteforce n in
  let prog = Workload.program Tsp.tsp in
  let out =
    Stm_ir.Interp.run ~cfg
      ~params:[ ("cities", n); ("threads", nthreads); ("use_locks", 0) ]
      prog
  in
  (match out.Stm_ir.Interp.result.Stm_runtime.Sched.exns with
  | [] -> ()
  | (t, e) :: _ -> Alcotest.failf "thread %d: %s" t (Printexc.to_string e));
  match out.Stm_ir.Interp.prints with
  | [ got ] ->
      check_int
        (Printf.sprintf "optimal tour (%s, %d threads)" cfg_name nthreads)
        expected (int_of_string got)
  | other ->
      Alcotest.failf "unexpected output: %s" (String.concat "," other)

(* OO7's checksum must equal a sequential replay: with a fixed op stream
   per worker, the final tree state is schedule-independent because the
   update function is idempotent in composition order per leaf. We check
   the weaker but still strong property that every configuration agrees
   with the single-threaded run. *)
let oo7_thread_count_invariance () =
  let prog = Workload.program Oo7.oo7 in
  let params nt =
    [ ("threads", nt); ("use_locks", 0) ] @ Oo7.oo7.Workload.params
  in
  let run cfg nt =
    (Stm_ir.Interp.run ~cfg ~params:(params nt) prog).Stm_ir.Interp.prints
  in
  (* same thread count, different STM configs -> identical checksums *)
  let base = run Stm_core.Config.eager_weak 4 in
  List.iter
    (fun cfg ->
      Alcotest.(check (list string))
        ("oo7 invariant under " ^ Stm_core.Config.describe cfg)
        base (run cfg 4))
    [
      Stm_core.Config.lazy_weak;
      Stm_core.Config.eager_strong;
      Stm_core.Config.lazy_strong;
      Stm_core.Config.(with_dea eager_strong);
    ]

(* JBB conservation: total quantity sold equals total stock decrease. *)
let jbb_conservation () =
  let prog = Workload.program Jbb.jbb in
  let out =
    Stm_ir.Interp.run ~cfg:Stm_core.Config.eager_strong
      ~params:([ ("threads", 4); ("use_locks", 0) ] @ Jbb.jbb.Workload.params)
      prog
  in
  match out.Stm_ir.Interp.prints with
  | [ _check; sold ] ->
      (* 6 items per order, quantity 1..3: bounds on total sold *)
      let orders =
        (* 7 of 10 ops are new-orders *)
        let total_ops = List.assoc "ops" Jbb.jbb.Workload.params in
        total_ops
      in
      let s = int_of_string sold in
      Alcotest.(check bool)
        "sold within bounds" true
        (s > 0 && s <= orders * 6 * 3)
  | other -> Alcotest.failf "unexpected output %s" (String.concat "," other)

let case name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "oracles",
      [
        case "tsp = brute force (weak, 1t)"
          (tsp_against_bruteforce "weak" Stm_core.Config.eager_weak 1);
        case "tsp = brute force (weak, 4t)"
          (tsp_against_bruteforce "weak" Stm_core.Config.eager_weak 4);
        case "tsp = brute force (strong, 4t)"
          (tsp_against_bruteforce "strong" Stm_core.Config.eager_strong 4);
        case "tsp = brute force (lazy strong, 8t)"
          (tsp_against_bruteforce "lazy-strong" Stm_core.Config.lazy_strong 8);
        case "tsp = brute force (dea, 16t)"
          (tsp_against_bruteforce "dea"
             Stm_core.Config.(with_dea eager_strong)
             16);
        case "oo7 config invariance" oo7_thread_count_invariance;
        case "jbb conservation" jbb_conservation;
      ] );
  ]
