(* Property: committed transactions are serializable.

   Random mini-transactions operate on a small shared array through an
   accumulator register (reads feed later writes, creating real data
   dependencies). Running them concurrently - under every STM
   configuration and several schedules - must leave the heap in a state
   produced by SOME serial order of the same transactions. *)

open Stm_runtime
open Stm_core

type op =
  | R of int  (* acc := cell[i] *)
  | W of int * int * int  (* cell[i] := (acc * a + b) mod 1009 *)

let ncells = 4

(* Serial oracle. *)
let apply_serial txns order =
  let heap = Array.make ncells 0 in
  List.iter
    (fun idx ->
      let acc = ref 0 in
      List.iter
        (function
          | R i -> acc := heap.(i)
          | W (i, a, b) -> heap.(i) <- ((!acc * a) + b) mod 1009)
        (List.nth txns idx))
    order;
  Array.to_list heap

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

(* Concurrent execution on the STM. *)
let run_concurrent cfg policy txns =
  let final = ref [] in
  let result, _ =
    Stm.run ~policy ~cfg (fun () ->
        let cells = Stm.alloc_public ~cls:"Cells" ncells in
        for i = 0 to ncells - 1 do
          Stm.write cells i (Stm.vint 0)
        done;
        let run_txn ops () =
          Stm.atomic (fun () ->
              let acc = ref 0 in
              List.iter
                (function
                  | R i -> acc := Stm.to_int (Stm.read cells i)
                  | W (i, a, b) ->
                      Stm.write cells i (Stm.vint (((!acc * a) + b) mod 1009)))
                ops)
        in
        let ts = List.map (fun ops -> Sched.spawn (run_txn ops)) txns in
        List.iter Sched.join ts;
        final :=
          List.init ncells (fun i -> Stm.to_int (Stm.read cells i)))
  in
  match (result.Sched.status, result.Sched.exns) with
  | Sched.Completed, [] -> Ok !final
  | Sched.Completed, (_, e) :: _ -> Error (Printexc.to_string e)
  | Sched.Deadlock _, _ -> Error "deadlock"
  | Sched.Fuel_exhausted, _ -> Error "fuel"

let gen_txn =
  QCheck.Gen.(
    list_size (int_range 1 5)
      (frequency
         [
           (1, map (fun i -> R (i mod ncells)) nat);
           ( 2,
             map3
               (fun i a b -> W (i mod ncells, 1 + (a mod 7), b mod 100))
               nat nat nat );
         ]))

let gen_txns = QCheck.Gen.(list_size (int_range 2 3) gen_txn)

let print_op = function
  | R i -> Printf.sprintf "R%d" i
  | W (i, a, b) -> Printf.sprintf "W%d(*%d+%d)" i a b

let print_txns txns =
  String.concat " | "
    (List.map (fun t -> String.concat ";" (List.map print_op t)) txns)

let serializable_under cfg policy =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "serializable [%s, %s]" (Config.describe cfg)
         (match policy with
         | Sched.Min_clock -> "min-clock"
         | Sched.Random s -> "random-" ^ string_of_int s
         | _ -> "other"))
    ~count:60
    (QCheck.make ~print:print_txns gen_txns)
    (fun txns ->
      let serial_outcomes =
        List.map (apply_serial txns)
          (permutations (List.init (List.length txns) Fun.id))
      in
      match run_concurrent cfg policy txns with
      | Ok final -> List.mem final serial_outcomes
      | Error msg -> QCheck.Test.fail_reportf "execution failed: %s" msg)

let qsuite =
  [
    serializable_under Config.eager_weak Sched.Min_clock;
    serializable_under Config.eager_weak (Sched.Random 7);
    serializable_under Config.lazy_weak Sched.Min_clock;
    serializable_under Config.lazy_weak (Sched.Random 13);
    serializable_under Config.eager_strong (Sched.Random 21);
    serializable_under Config.lazy_strong (Sched.Random 42);
    serializable_under Config.(with_dea eager_strong) (Sched.Random 5);
    serializable_under Config.(with_quiescence eager_weak) (Sched.Random 3);
    serializable_under Config.(with_granule 2 eager_weak) (Sched.Random 11);
    serializable_under Config.(with_wound_wait eager_weak) (Sched.Random 17);
    serializable_under Config.(with_wound_wait lazy_weak) (Sched.Random 19);
  ]

let suite =
  [ ("serializability", List.map QCheck_alcotest.to_alcotest qsuite) ]
