(* Interpreter-level tests: runtime errors, barrier-note semantics, the
   doomed-transaction fault recovery, cost accounting, and IR utilities. *)

open Stm_ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run ?(params = []) ?(cfg = Stm_core.Config.eager_weak) src =
  Interp.run ~cfg ~params (Stm_jtlang.Jt.compile src)

let string_contains haystack needle =
  let lh = String.length haystack and ln = String.length needle in
  let rec go i =
    i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1))
  in
  ln = 0 || go 0

let expect_thread_error src fragment =
  let out = run src in
  match out.Interp.result.Stm_runtime.Sched.exns with
  | (_, Interp.Interp_error msg) :: _ ->
      if not (string_contains msg fragment) then
        Alcotest.failf "error %S does not mention %S" msg fragment
  | (_, e) :: _ -> Alcotest.failf "unexpected exn %s" (Printexc.to_string e)
  | [] -> Alcotest.fail "expected a runtime error"

let interp_div_by_zero () =
  expect_thread_error
    "class Main { static void main() { int z = 0; print(1 / z); } }"
    "division by zero"

let interp_bounds () =
  expect_thread_error
    "class Main { static void main() { int[] a = new int[2]; print(a[5]); } }"
    "out of bounds"

let interp_null_deref () =
  expect_thread_error
    "class C { int x; } class Main { static void main() { C c = null; print(c.x); } }"
    "null"

let interp_negative_length () =
  expect_thread_error
    "class Main { static void main() { int n = 0 - 3; int[] a = new int[n]; print(a.length); } }"
    "negative"

let interp_missing_param () =
  expect_thread_error
    {|class Main { static void main() { print(param("nope")); } }|}
    "param"

let interp_assert_failure () =
  expect_thread_error
    "class Main { static void main() { assert(1 == 2); } }"
    "assertion"

let interp_instr_count () =
  let out = run "class Main { static void main() { int s = 0; for (int i = 0; i < 10; i++) { s += i; } print(s); } }" in
  check_bool "instructions counted" true (out.Interp.instrs > 30)

let interp_makespan_positive () =
  let out = run "class Main { static void main() { print(1); } }" in
  check_bool "cycles charged" true
    (out.Interp.result.Stm_runtime.Sched.makespan > 0)

let interp_strong_costs_more () =
  let src =
    {|class C { int v; }
class Main { static void main() {
  C c = new C();
  for (int i = 0; i < 100; i++) { c.v = c.v + 1; }
  print(c.v);
} }|}
  in
  let weak = run ~cfg:Stm_core.Config.eager_weak src in
  let strong = run ~cfg:Stm_core.Config.eager_strong src in
  Alcotest.(check (list string))
    "same output" weak.Interp.prints strong.Interp.prints;
  check_bool "strong slower" true
    (strong.Interp.result.Stm_runtime.Sched.makespan
    > weak.Interp.result.Stm_runtime.Sched.makespan)

let interp_doomed_fault_recovers () =
  (* regression for the doomed-transaction fault: a transaction reads a
     stale index, faults on the array access, must validate-abort-retry
     rather than crash *)
  let src =
    {|
class Q { static int[] data; static int top; }
class W extends Thread {
  int got;
  void run() {
    for (int i = 0; i < 20; i++) {
      int t = 0;
      atomic {
        if (Q.top > 0) {
          Q.top = Q.top - 1;
          t = Q.data[Q.top];
        }
      }
      got = got + t;
    }
  }
}
class Main { static void main() {
  Q.data = new int[40];
  Q.top = 40;
  for (int i = 0; i < 40; i++) { Q.data[i] = 1; }
  int[] ts = new int[4];
  for (int i = 0; i < 4; i++) { W w = new W(); ts[i] = spawn(w); }
  for (int i = 0; i < 4; i++) { join(ts[i]); }
  print(Q.top);
} }|}
  in
  let out = run ~cfg:Stm_core.Config.eager_weak src in
  (match out.Interp.result.Stm_runtime.Sched.exns with
  | [] -> ()
  | (_, e) :: _ -> Alcotest.failf "crashed: %s" (Printexc.to_string e));
  Alcotest.(check (list string)) "all popped" [ "0" ] out.Interp.prints

let interp_nobarrier_note_skips_barrier () =
  let src =
    {|class C { int v; }
class Main { static void main() {
  C c = new C();
  for (int i = 0; i < 50; i++) { c.v = c.v + 1; }
  print(c.v);
} }|}
  in
  let prog = Stm_jtlang.Jt.compile src in
  (* remove every barrier by hand *)
  Ir.iter_methods prog (fun m ->
      Ir.iter_access_notes m (fun _ note ->
          note.Ir.barrier <- Ir.Bar_removed "test"));
  let out = Interp.run ~cfg:Stm_core.Config.eager_strong prog in
  check_int "no barriers executed" 0 out.Interp.stats.Stm_core.Stats.barrier_reads;
  check_int "no barrier writes" 0 out.Interp.stats.Stm_core.Stats.barrier_writes

let interp_agg_note_semantics () =
  (* an aggregated group acquires once per group instead of once per
     access, and computes the same result *)
  let src =
    {|class C { int a; int b; }
class Main { static void main() {
  C c = new C();
  for (int i = 0; i < 50; i++) {
    c.a = c.a + 1;
    c.b = c.b + c.a;
  }
  print(c.b);
} }|}
  in
  let plain = Interp.run ~cfg:Stm_core.Config.eager_strong (Stm_jtlang.Jt.compile src) in
  let prog = Stm_jtlang.Jt.compile src in
  let folded = Stm_jit.Aggregate.run prog in
  check_bool "something aggregated" true (folded >= 2);
  let agg = Interp.run ~cfg:Stm_core.Config.eager_strong prog in
  Alcotest.(check (list string)) "same output" plain.Interp.prints agg.Interp.prints;
  check_bool "fewer atomic operations" true
    (agg.Interp.stats.Stm_core.Stats.atomic_ops
    < plain.Interp.stats.Stm_core.Stats.atomic_ops)

(* ------------------------------------------------------------------ *)
(* IR utilities                                                        *)
(* ------------------------------------------------------------------ *)

let ir_layout () =
  let prog =
    Stm_jtlang.Jt.compile
      "class A { int x; int y; } class B extends A { int z; } class Main { static void main() { } }"
  in
  let idx, f = Ir.instance_field_index prog "B" "z" in
  check_int "inherited fields first" 2 idx;
  check_bool "field name" true (f.Ir.fname = "z");
  let idx, _ = Ir.instance_field_index prog "B" "x" in
  check_int "super field index" 0 idx

let ir_static_resolution () =
  let prog =
    Stm_jtlang.Jt.compile
      "class A { static int s; } class B extends A { } class Main { static void main() { } }"
  in
  let dcls, idx, _ = Ir.static_field_index prog "B" "s" in
  Alcotest.(check string) "resolved to declaring class" "A" dcls;
  check_int "index" 0 idx

let ir_subclass () =
  let prog =
    Stm_jtlang.Jt.compile
      "class A { } class B extends A { } class C extends B { } class Main { static void main() { } }"
  in
  check_bool "C <= A" true (Ir.is_subclass prog "C" "A");
  check_bool "A not <= C" false (Ir.is_subclass prog "A" "C");
  check_bool "reflexive" true (Ir.is_subclass prog "B" "B")

let ir_thread_class () =
  let prog =
    Stm_jtlang.Jt.compile
      "class W extends Thread { void run() { } } class Main { static void main() { } }"
  in
  check_bool "W is a thread class" true (Ir.is_thread_class prog "W");
  check_bool "Thread itself is not" false (Ir.is_thread_class prog "Thread");
  check_bool "Main is not" false (Ir.is_thread_class prog "Main")

let cfg_blocks () =
  let prog =
    Stm_jtlang.Jt.compile
      "class Main { static void main() { int s = 0; for (int i = 0; i < 3; i++) { s += i; } print(s); } }"
  in
  let m = Option.get (Ir.find_method prog "Main" "main") in
  let cfg = Stm_jit.Cfg.build m in
  check_bool "several blocks" true (Array.length cfg.Stm_jit.Cfg.blocks >= 3);
  (* every pc belongs to exactly one block *)
  Array.iteri
    (fun i (b : Stm_jit.Cfg.block) ->
      for pc = b.Stm_jit.Cfg.start to b.Stm_jit.Cfg.stop - 1 do
        check_int "block_of consistent" i cfg.Stm_jit.Cfg.block_of.(pc)
      done)
    cfg.Stm_jit.Cfg.blocks;
  (* successor targets are valid block indices *)
  let succ = Stm_jit.Cfg.successors m cfg in
  Array.iter
    (List.iter (fun s ->
         check_bool "valid successor" true
           (s >= 0 && s < Array.length cfg.Stm_jit.Cfg.blocks)))
    succ

let case name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "interp:errors",
      [
        case "division by zero" interp_div_by_zero;
        case "array bounds" interp_bounds;
        case "null dereference" interp_null_deref;
        case "negative array length" interp_negative_length;
        case "missing param" interp_missing_param;
        case "assert failure" interp_assert_failure;
      ] );
    ( "interp:execution",
      [
        case "instruction counting" interp_instr_count;
        case "makespan positive" interp_makespan_positive;
        case "strong costs more" interp_strong_costs_more;
        case "doomed txn fault recovery" interp_doomed_fault_recovers;
        case "nobarrier notes" interp_nobarrier_note_skips_barrier;
        case "aggregation semantics" interp_agg_note_semantics;
      ] );
    ( "interp:ir",
      [
        case "instance layout" ir_layout;
        case "static resolution" ir_static_resolution;
        case "subclassing" ir_subclass;
        case "thread classes" ir_thread_class;
        case "cfg blocks" cfg_blocks;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Lazy class initialization (Section 5.3 semantics) + profiling       *)
(* ------------------------------------------------------------------ *)

let clinit_runs_on_first_static_access () =
  let out =
    run
      {|
class G {
  static int x;
  static void clinit() { G.x = 41; }
}
class Main { static void main() { print(G.x + 1); } }|}
  in
  Alcotest.(check (list string)) "initialized before first read" [ "42" ]
    out.Interp.prints

let clinit_runs_once () =
  let out =
    run
      {|
class G {
  static int runs;
  static int x;
  static void clinit() { G.runs = G.runs + 1; G.x = 1; }
}
class Main { static void main() {
  int a = G.x;
  int b = G.x;
  G.x = 7;
  print(G.runs + a + b);
} }|}
  in
  (* one initialization + two reads of 1 *)
  Alcotest.(check (list string)) "single run" [ "3" ] out.Interp.prints

let clinit_triggered_by_new () =
  let out =
    run
      {|
class C {
  int v;
  static int seed;
  static void clinit() { C.seed = 9; }
}
class Main { static void main() {
  C c = new C();
  c.v = C.seed;
  print(c.v);
} }|}
  in
  Alcotest.(check (list string)) "new triggers clinit" [ "9" ] out.Interp.prints

let clinit_inside_transaction () =
  (* first use inside an atomic block: the initializer runs in the
     transaction, which is exactly why NAIT needs the exemption *)
  let out =
    run ~cfg:Stm_core.Config.eager_strong
      {|
class T {
  static int[] table;
  static void clinit() {
    T.table = new int[4];
    for (int i = 0; i < 4; i++) { T.table[i] = i * i; }
  }
}
class Main { static void main() {
  int r = 0;
  atomic { r = T.table[3]; }
  print(r);
} }|}
  in
  Alcotest.(check (list string)) "clinit in txn" [ "9" ] out.Interp.prints

let profile_counts_sites () =
  let prog =
    Stm_jtlang.Jt.compile
      {|
class C { int v; }
class G { static C shared; }
class Main { static void main() {
  C c = new C();
  G.shared = c;
  for (int i = 0; i < 37; i++) { c.v = c.v + 1; }
  print(c.v);
} }|}
  in
  let out =
    Interp.run ~profile:true ~cfg:Stm_core.Config.eager_strong prog
  in
  Alcotest.(check bool) "profile non-empty" true (out.Interp.site_profile <> []);
  (* hottest first *)
  let hits = List.map snd out.Interp.site_profile in
  Alcotest.(check (list int)) "sorted descending" (List.sort (fun a b -> compare b a) hits) hits;
  (* the loop body accesses dominate: 37 reads + 37 writes *)
  Alcotest.(check int) "hottest site count" 37 (List.hd hits);
  let off = Interp.run ~cfg:Stm_core.Config.eager_strong prog in
  Alcotest.(check (list (pair int int))) "off by default" [] off.Interp.site_profile

let suite =
  suite
  @ [
      ( "interp:clinit",
        [
          case "first static access" clinit_runs_on_first_static_access;
          case "runs once" clinit_runs_once;
          case "triggered by new" clinit_triggered_by_new;
          case "inside transaction" clinit_inside_transaction;
        ] );
      ("interp:profile", [ case "counts sites" profile_counts_sites ]);
    ]
