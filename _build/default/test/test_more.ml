(* Additional cross-cutting coverage: scheduler policies, explorer
   determinism, Jt corner cases, strong atomicity under coarse granules,
   and interactions between features (wound-wait x lazy, quiescence x
   lazy ordering, DEA x aggregation). *)

open Stm_runtime
open Stm_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Scheduler policies                                                  *)
(* ------------------------------------------------------------------ *)

let round_robin_rotates () =
  let order = ref [] in
  let r =
    Sched.run ~policy:Sched.Round_robin (fun () ->
        let mk id () =
          for _ = 1 to 3 do
            order := id :: !order;
            Sched.yield ()
          done
        in
        let a = Sched.spawn (mk 1) in
        let b = Sched.spawn (mk 2) in
        let c = Sched.spawn (mk 3) in
        List.iter Sched.join [ a; b; c ])
  in
  check_bool "completed" true (r.Sched.status = Sched.Completed);
  (* perfect rotation: 1 2 3 1 2 3 1 2 3 *)
  Alcotest.(check (list int))
    "round robin order"
    [ 1; 2; 3; 1; 2; 3; 1; 2; 3 ]
    (List.rev !order)

let random_policies_differ () =
  let trace seed =
    let log = ref [] in
    ignore
      (Sched.run ~policy:(Sched.Random seed) (fun () ->
           let mk id () =
             for _ = 1 to 6 do
               log := id :: !log;
               Sched.yield ()
             done
           in
           let ts = List.init 3 (fun i -> Sched.spawn (mk i)) in
           List.iter Sched.join ts));
    !log
  in
  check_bool "different seeds, different schedules" true
    (trace 1 <> trace 99 || trace 2 <> trace 100)

let min_clock_prefers_behind () =
  (* the cheap thread gets scheduled more often *)
  let counts = Array.make 2 0 in
  ignore
    (Sched.run ~policy:Sched.Min_clock (fun () ->
         let mk i cost () =
           for _ = 1 to 20 do
             counts.(i) <- counts.(i) + 1;
             Sched.tick cost;
             Sched.yield ()
           done
         in
         let a = Sched.spawn (mk 0 1) in
         let b = Sched.spawn (mk 1 100) in
         Sched.join a;
         Sched.join b));
  check_int "both complete fully" 40 (counts.(0) + counts.(1))

(* ------------------------------------------------------------------ *)
(* Explorer determinism                                                *)
(* ------------------------------------------------------------------ *)

let explorer_deterministic () =
  let open Stm_litmus in
  let program = Programs.speculative_lost_update in
  let mode = Modes.Weak Config.Eager in
  let cfg = Modes.config mode in
  let explore () =
    let e =
      Explorer.explore ~max_runs:300 ~cfg
        ~make:(fun () -> program.Programs.build (Modes.harness mode cfg))
        ()
    in
    (e.Explorer.outcomes, e.Explorer.runs)
  in
  check_bool "two explorations identical" true (explore () = explore ())

let pct_deterministic_per_seed () =
  let open Stm_litmus in
  let program = Programs.intermediate_dirty_read in
  let mode = Modes.Weak Config.Eager in
  let cfg = Modes.config mode in
  let explore seed =
    (Explorer.explore_pct ~runs:100 ~seed ~cfg
       ~make:(fun () -> program.Programs.build (Modes.harness mode cfg))
       ())
      .Explorer.outcomes
  in
  check_bool "same seed same outcomes" true (explore 5 = explore 5)

(* ------------------------------------------------------------------ *)
(* Jt corner cases                                                     *)
(* ------------------------------------------------------------------ *)

let run_jt ?(params = []) ?(cfg = Config.eager_weak) src =
  let out = Stm_ir.Interp.run ~cfg ~params (Stm_jtlang.Jt.compile src) in
  (match out.Stm_ir.Interp.result.Sched.exns with
  | [] -> ()
  | (t, e) :: _ -> Alcotest.failf "thread %d: %s" t (Printexc.to_string e));
  out

let jt_nested_atomic () =
  let out =
    run_jt ~cfg:Config.eager_strong
      {|
class G { static int x; }
class Main {
  static void inner() { atomic { G.x = G.x + 1; } }
  static void main() {
    atomic {
      G.x = 10;
      inner();           // closed nesting by flattening
      atomic { G.x = G.x * 2; }
    }
    print(G.x);
  }
}|}
  in
  Alcotest.(check (list string)) "nested atomics flatten" [ "22" ]
    out.Stm_ir.Interp.prints

let jt_deep_recursion_in_txn () =
  let out =
    run_jt
      {|
class Main {
  static int sum(int n) {
    if (n == 0) { return 0; }
    return n + sum(n - 1);
  }
  static void main() {
    int r = 0;
    atomic { r = sum(60); }
    print(r);
  }
}|}
  in
  Alcotest.(check (list string)) "recursion inside txn" [ "1830" ]
    out.Stm_ir.Interp.prints

let jt_volatile_keeps_barrier () =
  let prog =
    Stm_jtlang.Jt.compile
      {|
class C { volatile int f; int g; }
class Main { static void main() {
  C c = new C();
  c.f = 1;
  print(c.f + c.g);
} }|}
  in
  (* immutability/escape passes must not touch the volatile field's
     accesses... escape CAN remove them (the object is provably local,
     which subsumes any ordering concern); aggregation must not fold
     across them - verified structurally in test_jit; here check the
     front end records the flag *)
  let _, f = Stm_ir.Ir.instance_field_index prog "C" "f" in
  check_bool "volatile recorded" true f.Stm_ir.Ir.f_volatile;
  let _, g = Stm_ir.Ir.instance_field_index prog "C" "g" in
  check_bool "non-volatile" false g.Stm_ir.Ir.f_volatile

let jt_shadowing_scopes () =
  let out =
    run_jt
      {|
class Main { static void main() {
  int x = 1;
  for (int i = 0; i < 2; i++) {
    int y = x + i;
    print(y);
  }
  { int z = 10; print(z + x); }
  print(x);
} }|}
  in
  Alcotest.(check (list string)) "block scoping" [ "1"; "2"; "11"; "1" ]
    out.Stm_ir.Interp.prints

let jt_synchronized_reentrant () =
  let out =
    run_jt
      {|
class L { int v; }
class Main {
  static void main() {
    L l = new L();
    synchronized (l) {
      synchronized (l) { l.v = 5; }
      l.v = l.v + 1;
    }
    print(l.v);
  }
}|}
  in
  Alcotest.(check (list string)) "reentrant monitors" [ "6" ]
    out.Stm_ir.Interp.prints

(* ------------------------------------------------------------------ *)
(* Feature interactions                                                *)
(* ------------------------------------------------------------------ *)

let in_sim f =
  let result = Sched.run f in
  (match result.Sched.exns with
  | [] -> ()
  | (tid, e) :: _ ->
      Alcotest.failf "thread %d raised %s" tid (Printexc.to_string e));
  check_bool "completed" true (result.Sched.status = Sched.Completed)

let with_stm ~cfg f =
  Heap.reset ();
  Stm.install cfg;
  Fun.protect ~finally:Stm.uninstall (fun () -> in_sim f)

let geti o f = Stm.to_int (Stm.read o f)

let strong_hides_granularity () =
  (* under strong atomicity coarse granules must NOT lose concurrent
     non-transactional updates: "a strongly-atomic system hides this
     granularity" (end of Section 2.4) *)
  let cfg = Config.(with_granule 2 eager_strong) in
  with_stm ~cfg (fun () ->
      let o = Stm.alloc_public ~cls:"C" 2 in
      Stm.write o 0 (Stm.vint 0);
      Stm.write o 1 (Stm.vint 0);
      let t =
        Sched.spawn (fun () ->
            for _ = 1 to 10 do
              (try
                 Stm.atomic (fun () ->
                     Stm.write o 0 (Stm.vint (geti o 0 + 1));
                     if geti o 0 mod 3 = 0 then failwith "forced abort")
               with Failure _ -> ());
              Sched.yield ()
            done)
      in
      let u =
        Sched.spawn (fun () ->
            for i = 1 to 10 do
              Stm.write o 1 (Stm.vint i);
              Sched.tick 40;
              Sched.yield ()
            done)
      in
      Sched.join t;
      Sched.join u;
      check_int "non-txn writes to the adjacent field survive aborts" 10
        (geti o 1))

let wound_wait_lazy () =
  let cfg = Config.(with_wound_wait lazy_weak) in
  with_stm ~cfg (fun () ->
      let o = Stm.alloc_public ~cls:"Ctr" 1 in
      Stm.write o 0 (Stm.vint 0);
      let worker () =
        for _ = 1 to 20 do
          Stm.atomic (fun () -> Stm.write o 0 (Stm.vint (geti o 0 + 1)))
        done
      in
      let ts = List.init 5 (fun _ -> Sched.spawn worker) in
      List.iter Sched.join ts;
      check_int "lazy + wound-wait counts correctly" 100 (geti o 0))

let quiesce_lazy_writeback_order () =
  (* with quiescence, lazy write-backs are serialized in commit order:
     after both transactions commit, the one serialized second wins *)
  let cfg = Config.(with_quiescence lazy_weak) in
  with_stm ~cfg (fun () ->
      let o = Stm.alloc_public ~cls:"C" 1 in
      Stm.write o 0 (Stm.vint 0);
      let w v () = Stm.atomic (fun () -> Stm.write o 0 (Stm.vint v)) in
      let a = Sched.spawn (w 1) in
      let b = Sched.spawn (w 2) in
      Sched.join a;
      Sched.join b;
      let final = geti o 0 in
      check_bool "one of the committed values" true (final = 1 || final = 2))

let dea_aggregation_private_group () =
  (* an aggregated group over a private object takes the fast path: no
     atomic operations at all *)
  let src =
    {|
class C { int a; int b; }
class Main {
  static C alloc() { return new C(); }
  static void main() {
    C c = alloc();
    c.a = 1;
    c.b = c.a + 1;
    print(c.b);
  }
}|}
  in
  let prog = Stm_jtlang.Jt.compile src in
  ignore (Stm_jit.Aggregate.run prog);
  let out =
    Stm_ir.Interp.run ~cfg:Config.(with_dea eager_strong) prog
  in
  Alcotest.(check (list string)) "result" [ "2" ] out.Stm_ir.Interp.prints;
  check_int "no atomics on private aggregated group" 0
    out.Stm_ir.Interp.stats.Stats.atomic_ops

let retry_with_multiple_waiters () =
  with_stm ~cfg:Config.eager_weak (fun () ->
      let flag = Stm.alloc_public ~cls:"Flag" 1 in
      let got = Stm.alloc_public ~cls:"Got" 1 in
      Stm.write flag 0 (Stm.vint 0);
      Stm.write got 0 (Stm.vint 0);
      let waiter () =
        Stm.atomic (fun () ->
            if geti flag 0 = 0 then Stm.retry ()
            else Stm.write got 0 (Stm.vint (geti got 0 + 1)))
      in
      let a = Sched.spawn waiter in
      let b = Sched.spawn waiter in
      Sched.tick 500;
      Sched.yield ();
      Stm.atomic (fun () -> Stm.write flag 0 (Stm.vint 1));
      Sched.join a;
      Sched.join b;
      check_int "both waiters woke and ran" 2 (geti got 0))

let case name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "more:sched",
      [
        case "round robin rotates" round_robin_rotates;
        case "random policies differ" random_policies_differ;
        case "min-clock runs all" min_clock_prefers_behind;
      ] );
    ( "more:explorer",
      [
        case "dfs deterministic" explorer_deterministic;
        case "pct deterministic per seed" pct_deterministic_per_seed;
      ] );
    ( "more:jt",
      [
        case "nested atomic" jt_nested_atomic;
        case "recursion in txn" jt_deep_recursion_in_txn;
        case "volatile flag" jt_volatile_keeps_barrier;
        case "scoping" jt_shadowing_scopes;
        case "reentrant monitors" jt_synchronized_reentrant;
      ] );
    ( "more:interactions",
      [
        case "strong hides granularity" strong_hides_granularity;
        case "wound-wait x lazy" wound_wait_lazy;
        case "quiescence x lazy ordering" quiesce_lazy_writeback_order;
        case "dea x aggregation" dea_aggregation_private_group;
        case "retry with multiple waiters" retry_with_multiple_waiters;
      ] );
  ]

(* ------------------------------------------------------------------ *)
(* Scheduler properties (qcheck)                                       *)
(* ------------------------------------------------------------------ *)

let sched_qcheck =
  let open QCheck in
  [
    (* makespan of independent threads under min-clock = max total work *)
    Test.make ~name:"sched: min-clock makespan = max thread work" ~count:100
      (list_of_size (Gen.int_range 1 6)
         (list_of_size (Gen.int_range 1 10) (int_range 1 50)))
      (fun works ->
        let r =
          Sched.run ~policy:Sched.Min_clock (fun () ->
              let ts =
                List.map
                  (fun w ->
                    Sched.spawn (fun () ->
                        List.iter
                          (fun c ->
                            Sched.tick c;
                            Sched.yield ())
                          w))
                  works
              in
              List.iter Sched.join ts)
        in
        let expectation =
          List.fold_left
            (fun acc w -> max acc (List.fold_left ( + ) 0 w))
            0 works
        in
        r.Sched.makespan = expectation);
    (* under any policy, total ticks are conserved in each thread *)
    Test.make ~name:"sched: completion under random policies" ~count:50
      (pair (int_range 0 1000) (int_range 1 5))
      (fun (seed, nthreads) ->
        let done_count = ref 0 in
        let r =
          Sched.run ~policy:(Sched.Random seed) (fun () ->
              let ts =
                List.init nthreads (fun i ->
                    Sched.spawn (fun () ->
                        for _ = 1 to 5 + i do
                          Sched.tick 3;
                          Sched.yield ()
                        done;
                        incr done_count))
              in
              List.iter Sched.join ts)
        in
        r.Sched.status = Sched.Completed && !done_count = nthreads);
    (* serializability of the STM counter under arbitrary random seeds *)
    Test.make ~name:"stm: counter exact under random schedules" ~count:40
      (int_range 0 10_000) (fun seed ->
        Heap.reset ();
        Stm.install Config.eager_strong;
        Fun.protect ~finally:Stm.uninstall (fun () ->
            let total = ref (-1) in
            let r =
              Sched.run ~policy:(Sched.Random seed) (fun () ->
                  let o = Stm.alloc_public ~cls:"C" 1 in
                  Stm.write o 0 (Stm.vint 0);
                  let w () =
                    for _ = 1 to 10 do
                      Stm.atomic (fun () ->
                          Stm.write o 0
                            (Stm.vint (Stm.to_int (Stm.read o 0) + 1)))
                    done
                  in
                  let ts = List.init 3 (fun _ -> Sched.spawn w) in
                  List.iter Sched.join ts;
                  total := Stm.to_int (Stm.read o 0))
            in
            r.Sched.status = Sched.Completed && r.Sched.exns = [] && !total = 30));
  ]

let suite = suite @ [ ("more:qcheck", List.map QCheck_alcotest.to_alcotest sched_qcheck) ]

(* ------------------------------------------------------------------ *)
(* Full-stack Jt exploration                                           *)
(* ------------------------------------------------------------------ *)

let explore_jt src ~cfg =
  let prog = Stm_jtlang.Jt.compile src in
  let make () =
    let main, observe = Stm_ir.Interp.explorer_instance prog in
    { Stm_litmus.Explorer.main; observe }
  in
  Stm_litmus.Explorer.explore ~max_runs:3000 ~cfg ~make ()

let jt_explore_racy_program () =
  let e =
    explore_jt ~cfg:Config.eager_weak
      {|
class G { static int x; }
class W extends Thread { int v; void run() { G.x = v; } }
class Main { static void main() {
  W a = new W(); a.v = 1;
  W b = new W(); b.v = 2;
  int t1 = spawn(a);
  int t2 = spawn(b);
  join(t1); join(t2);
  print(G.x);
} }|}
  in
  check_bool "both orders found" true
    (Stm_litmus.Explorer.observed e (fun s -> s = "1")
    && Stm_litmus.Explorer.observed e (fun s -> s = "2"))

let jt_explore_transactional_program_single_outcome () =
  let e =
    explore_jt ~cfg:Config.eager_strong
      {|
class G { static int x; }
class W extends Thread { void run() { atomic { G.x = G.x + 1; } } }
class Main { static void main() {
  int a = spawn(new W());
  int b = spawn(new W());
  join(a); join(b);
  print(G.x);
} }|}
  in
  Alcotest.(check (list (pair string int)))
    "single outcome across all schedules"
    [ ("2", (List.filter (fun (o, _) -> o = "2") e.Stm_litmus.Explorer.outcomes
             |> List.map snd |> List.fold_left ( + ) 0)) ]
    e.Stm_litmus.Explorer.outcomes

let suite =
  suite
  @ [
      ( "more:jt-explore",
        [
          case "racy program: both outcomes" jt_explore_racy_program;
          case "transactional program: one outcome"
            jt_explore_transactional_program_single_outcome;
        ] );
    ]
