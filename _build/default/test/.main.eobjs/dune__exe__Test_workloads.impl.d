test/test_workloads.ml: Alcotest Jbb Jvm98 List Oo7 Printexc Printf Stm_analysis Stm_core Stm_harness Stm_ir Stm_jit Stm_litmus Stm_runtime Stm_workloads Tsp Workload
