test/test_oracles.ml: Alcotest Array Jbb List Oo7 Printexc Printf Stm_core Stm_ir Stm_runtime Stm_workloads String Tsp Workload
