test/test_serializability.ml: Array Config Fun List Printexc Printf QCheck QCheck_alcotest Sched Stm Stm_core Stm_runtime String
