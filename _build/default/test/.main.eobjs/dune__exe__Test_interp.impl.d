test/test_interp.ml: Alcotest Array Interp Ir List Option Printexc Stm_core Stm_ir Stm_jit Stm_jtlang Stm_runtime String
