test/test_analysis.ml: Alcotest Array Barrier_stats List Nait Printexc Pta Stm_analysis Stm_core Stm_harness Stm_ir Stm_jtlang Stm_runtime Thread_local
