test/test_jit.ml: Alcotest Array Ir Printexc Stm_core Stm_ir Stm_jit Stm_jtlang Stm_runtime
