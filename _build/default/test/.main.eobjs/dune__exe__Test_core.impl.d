test/test_core.ml: Alcotest Array Atomic Barriers Config Conflict Cost Dea Fun Gen Hashtbl Heap List Printexc QCheck QCheck_alcotest Quiesce Sched Stats Stm Stm_core Stm_runtime Test Trace Txn Txrec
