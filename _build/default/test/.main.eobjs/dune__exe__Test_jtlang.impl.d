test/test_jtlang.ml: Alcotest Jt Lexer List Printexc Stm_core Stm_ir Stm_jtlang Stm_runtime
