test/main.mli:
