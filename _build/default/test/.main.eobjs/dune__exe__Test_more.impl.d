test/test_more.ml: Alcotest Array Config Explorer Fun Gen Heap List Modes Printexc Programs QCheck QCheck_alcotest Sched Stats Stm Stm_core Stm_ir Stm_jit Stm_jtlang Stm_litmus Stm_runtime Test
