test/test_runtime.ml: Alcotest Atomic Cost Det_rng Heap List Sched Sim_mutex Stm_runtime
