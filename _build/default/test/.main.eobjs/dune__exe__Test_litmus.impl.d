test/test_litmus.ml: Alcotest Explorer List Matrix Modes Printf Programs Stm_core Stm_litmus Stm_runtime String
