(* Tests for the whole-program analyses (Section 5): points-to with
   transactional contexts, NAIT (Figure 12), and the TL comparison. *)

open Stm_analysis

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let analyze src = Pta.analyze (Stm_jtlang.Jt.compile src)

(* Collect the NAIT/TL decisions keyed by a recognizable access: we tag
   interesting sites by scanning the program for accesses to a named
   field. *)
let decisions_for prog pta ~cls ~fld =
  let found = ref [] in
  Stm_ir.Ir.iter_methods prog (fun m ->
      Array.iter
        (fun ins ->
          let interesting note kind =
            let info = { Pta.site = note.Stm_ir.Ir.site; meth = m; kind; array = false; clinit_own = false } in
            ignore info;
            found :=
              (kind, Nait.decide pta { Pta.site = note.Stm_ir.Ir.site; meth = m; kind; array = false; clinit_own = false },
               Thread_local.decide pta { Pta.site = note.Stm_ir.Ir.site; meth = m; kind; array = false; clinit_own = false })
              :: !found
          in
          match ins with
          | Stm_ir.Ir.Load { cls = c; fld = f; note; _ }
            when c = cls && f = fld ->
              interesting note `Read
          | Stm_ir.Ir.Store { cls = c; fld = f; note; _ }
            when c = cls && f = fld ->
              interesting note `Write
          | _ -> ())
        m.Stm_ir.Ir.body);
  !found

(* Figure 12, row "none": object never accessed in a transaction ->
   remove both barriers. *)
let nait_row_none () =
  let src =
    {|
class D { int v; }
class Main { static void main() {
  D d = new D();
  d.v = 1;
  print(d.v);
  atomic { print(1); }
} }|}
  in
  let prog = Stm_jtlang.Jt.compile src in
  let pta = Pta.analyze prog in
  List.iter
    (fun (_, (n : Nait.decision), _) ->
      check_bool "removable when not accessed in txn" true n.Nait.removable)
    (decisions_for prog pta ~cls:"D" ~fld:"v")

(* Figure 12, row "only read in txn": reads removable, writes not. *)
let nait_row_read_only () =
  let src =
    {|
class D { int v; }
class G { static D shared; }
class Main { static void main() {
  D d = new D();
  G.shared = d;
  d.v = 1;
  print(d.v);
  atomic { print(G.shared.v); }
} }|}
  in
  let prog = Stm_jtlang.Jt.compile src in
  let pta = Pta.analyze prog in
  List.iter
    (fun (kind, (n : Nait.decision), _) ->
      match kind with
      | `Read -> check_bool "read removable" true n.Nait.removable
      | `Write -> check_bool "write kept" false n.Nait.removable)
    (decisions_for prog pta ~cls:"D" ~fld:"v")

(* Figure 12, rows "written in txn": nothing removable. *)
let nait_row_written () =
  let src =
    {|
class D { int v; }
class G { static D shared; }
class Main { static void main() {
  D d = new D();
  G.shared = d;
  d.v = 1;
  print(d.v);
  atomic { G.shared.v = 2; }
} }|}
  in
  let prog = Stm_jtlang.Jt.compile src in
  let pta = Pta.analyze prog in
  let ds = decisions_for prog pta ~cls:"D" ~fld:"v" in
  check_bool "found sites" true (ds <> []);
  (* the non-transactional d.v read and write must both keep barriers:
     the object is written inside a transaction *)
  let nontxn =
    List.filter
      (fun (_, (n : Nait.decision), _) -> n.Nait.reason <> "unreachable")
      ds
  in
  check_bool "some barrier kept" true
    (List.exists
       (fun (_, (n : Nait.decision), _) -> not n.Nait.removable)
       nontxn);
  List.iter
    (fun ((kind : [ `Read | `Write ]), (n : Nait.decision), _) ->
      ignore kind;
      check_bool "non-txn accesses to txn-written object keep barriers"
        false n.Nait.removable)
    nontxn

(* The data-handoff scenario from Section 5: items flow between threads
   through a transactional queue; the queue needs barriers, the items do
   not - NAIT sees this, TL cannot. *)
let nait_data_handoff () =
  let src =
    {|
class Item { int payload; }
class Queue { static Item[] slots; static int n; }
class Producer extends Thread {
  void run() {
    for (int i = 0; i < 5; i++) {
      Item it = new Item();
      it.payload = i;                 // non-txn write to the item
      atomic { Queue.slots[Queue.n] = it; Queue.n = Queue.n + 1; }
    }
  }
}
class Consumer extends Thread {
  int sum;
  void run() {
    int got = 0;
    while (got < 5) {
      Item it = null;
      atomic {
        if (Queue.n > 0) { Queue.n = Queue.n - 1; it = Queue.slots[Queue.n]; }
      }
      if (it != null) { sum = sum + it.payload; got = got + 1; }  // non-txn read
    }
  }
}
class Main { static void main() {
  Queue.slots = new Item[16];
  Queue.n = 0;
  int p = spawn(new Producer());
  int c = spawn(new Consumer());
  join(p);
  join(c);
  print(1);
} }|}
  in
  let prog = Stm_jtlang.Jt.compile src in
  let pta = Pta.analyze prog in
  let item_sites = decisions_for prog pta ~cls:"Item" ~fld:"payload" in
  check_bool "found item accesses" true (item_sites <> []);
  List.iter
    (fun (kind, (n : Nait.decision), (t : Thread_local.decision)) ->
      (match kind with
      | `Read ->
          (* items are only read in transactions? no - they are stored
             (reference) but their payload field is never accessed in a
             txn: both barriers removable by NAIT *)
          check_bool "NAIT removes item read" true n.Nait.removable
      | `Write -> check_bool "NAIT removes item write" true n.Nait.removable);
      check_bool "TL cannot (items escape through the queue)" false
        t.Thread_local.removable)
    item_sites

(* Fields of Thread subclasses: thread-local in practice, unprovable for
   TL, removable by NAIT (the paper's tsp observation). *)
let nait_thread_subclass_fields () =
  let src =
    {|
class W extends Thread {
  int scratch;
  void run() {
    for (int i = 0; i < 10; i++) { scratch = scratch + i; }
    int s = scratch;
    atomic { G.total = G.total + s; }
  }
}
class G { static int total; }
class Main { static void main() {
  int a = spawn(new W());
  join(a);
  print(G.total);
} }|}
  in
  let prog = Stm_jtlang.Jt.compile src in
  let pta = Pta.analyze prog in
  let ds =
    (* only the sites reachable as non-transactional code matter: the
       read lexically inside the atomic block is transactional *)
    List.filter
      (fun (_, (n : Nait.decision), _) -> n.Nait.reason <> "unreachable")
      (decisions_for prog pta ~cls:"W" ~fld:"scratch")
  in
  check_bool "found scratch accesses" true (ds <> []);
  List.iter
    (fun ((kind : [ `Read | `Write ]), (n : Nait.decision), (t : Thread_local.decision)) ->
      (match kind with
      | `Write ->
          check_bool "NAIT removes write to thread field" true n.Nait.removable
      | `Read -> ());
      check_bool "TL keeps (reachable from thread object)" false
        t.Thread_local.removable)
    ds

(* Heap specialization: the same allocation site produces distinct
   abstract objects in and out of transactions. *)
let pta_heap_specialization () =
  let src =
    {|
class D { int v; }
class Main {
  static D mk() { return new D(); }
  static void main() {
    D outside = mk();
    outside.v = 1;
    atomic {
      D inside = mk();
      inside.v = 2;
    }
    print(outside.v);
  }
}|}
  in
  let prog = Stm_jtlang.Jt.compile src in
  let pta = Pta.analyze prog in
  (* the non-transactional write outside.v must be removable: only the
     not-in-txn specialization of the mk() object flows to it *)
  let ds = decisions_for prog pta ~cls:"D" ~fld:"v" in
  let nontxn_writes =
    List.filter
      (fun (kind, (n : Nait.decision), _) ->
        kind = `Write && n.Nait.reason <> "unreachable")
      ds
  in
  check_bool "found the outside write" true (nontxn_writes <> []);
  List.iter
    (fun (_, (n : Nait.decision), _) ->
      check_bool "outside write removable despite shared alloc site" true
        n.Nait.removable)
    nontxn_writes

let pta_contexts_reachable () =
  let src =
    {|
class Main {
  static int helper(int x) { return x + 1; }
  static void main() {
    print(helper(1));
    atomic { print(helper(2)); }
  }
}|}
  in
  let pta = analyze src in
  let ms = Pta.reachable_methods pta in
  check_bool "helper reachable in both contexts" true
    (List.mem ("Main::helper", Pta.Txn) ms
    && List.mem ("Main::helper", Pta.Nontxn) ms)

let pta_statics_shared () =
  let src =
    {|
class G { static int x; }
class Main { static void main() { G.x = 1; print(G.x); } }|}
  in
  let prog = Stm_jtlang.Jt.compile src in
  let pta = Pta.analyze prog in
  (* every statics object is thread-shared for TL *)
  let shared = ref false in
  Pta.iter_sites pta (fun info ->
      let objs = Pta.site_objs pta Pta.Nontxn info.Pta.site in
      Pta.ISet.iter
        (fun o -> if Pta.aid_is_statics pta o && Pta.thread_shared pta o then shared := true)
        objs);
  check_bool "statics shared" true !shared

let nait_clinit_exemption () =
  let src =
    {|
class G {
  static int[] table;
  static void clinit() {
    G.table = new int[8];
    for (int i = 0; i < 8; i++) { G.table[i] = i; }
  }
}
class Main { static void main() {
  G.clinit();
  atomic { G.table[0] = 9; }
  print(G.table[0]);
} }|}
  in
  let prog = Stm_jtlang.Jt.compile src in
  let pta = Pta.analyze prog in
  (* the G.table static accesses inside G.clinit are exempt *)
  let exempt = ref 0 in
  Pta.iter_sites pta (fun info ->
      if info.Pta.clinit_own then begin
        incr exempt;
        let d = Nait.decide pta info in
        check_bool "clinit access removable" true d.Nait.removable;
        Alcotest.(check string) "reason" "clinit" d.Nait.reason
      end);
  check_bool "found exempt accesses" true (!exempt >= 1)

let nait_apply_rewrites () =
  let src =
    {|
class D { int v; }
class Main { static void main() {
  D d = new D();
  d.v = 41;
  print(d.v);
} }|}
  in
  let prog = Stm_jtlang.Jt.compile src in
  let pta = Pta.analyze prog in
  let n = Nait.apply prog pta in
  check_bool "removed some barriers" true (n >= 2);
  (* no transactions at all: every reachable barrier must be gone *)
  Stm_ir.Ir.iter_methods prog (fun m ->
      Stm_ir.Ir.iter_access_notes m (fun _ note ->
          check_bool "all notes rewritten" true
            (note.Stm_ir.Ir.barrier <> Stm_ir.Ir.Bar_auto)))

let fig13_invariants () =
  let rows = Stm_harness.Figures.fig13 () in
  check_int "eight rows" 8 (List.length rows);
  List.iter
    (fun (r : Barrier_stats.row) ->
      check_bool "combined >= nait_only" true (r.combined >= r.nait_only);
      check_bool "combined >= tl_only" true (r.combined >= r.tl_only);
      check_bool "total >= combined" true (r.total >= r.combined);
      check_bool "NAIT finds at least as much as TL alone" true
        (r.nait_only >= 0))
    rows;
  (* the paper's headline: NAIT-only removals exist, TL-only are rare *)
  let total_nait = List.fold_left (fun a (r : Barrier_stats.row) -> a + r.nait_only) 0 rows in
  let total_tl = List.fold_left (fun a (r : Barrier_stats.row) -> a + r.tl_only) 0 rows in
  check_bool "NAIT dominates TL" true (total_nait > total_tl)

let case name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "analysis:nait",
      [
        case "fig12 row: not accessed in txn" nait_row_none;
        case "fig12 row: only read in txn" nait_row_read_only;
        case "fig12 row: written in txn" nait_row_written;
        case "data handoff (NAIT beats TL)" nait_data_handoff;
        case "thread-subclass fields" nait_thread_subclass_fields;
        case "clinit exemption" nait_clinit_exemption;
        case "apply rewrites notes" nait_apply_rewrites;
      ] );
    ( "analysis:pta",
      [
        case "heap specialization" pta_heap_specialization;
        case "two contexts" pta_contexts_reachable;
        case "statics shared" pta_statics_shared;
      ] );
    ("analysis:fig13", [ case "table invariants" fig13_invariants ]);
  ]

(* ------------------------------------------------------------------ *)
(* Section 5.2 extension: transactional open-for-read removal          *)
(* ------------------------------------------------------------------ *)

let txn_read_removal_src =
  {|
class Table { static int[] weights; }
class G { static int total; }
class W extends Thread {
  int id;
  void run() {
    for (int i = 0; i < 30; i++) {
      atomic {
        // reads a table no transaction ever writes, plus a hot counter;
        // the added value depends only on (id, i) so the final total is
        // schedule-independent
        G.total = G.total + Table.weights[(id * 31 + i) % Table.weights.length];
      }
    }
  }
}
class Main { static void main() {
  Table.weights = new int[16];
  for (int i = 0; i < 16; i++) { Table.weights[i] = 1 + i % 3; }
  int a = spawn(mk(0));
  int b = spawn(mk(1));
  join(a);
  join(b);
  print(G.total);
} 
  static W mk(int id) { W w = new W(); w.id = id; return w; }
}|}

let txn_read_removal_marks () =
  let prog = Stm_jtlang.Jt.compile txn_read_removal_src in
  let pta = Pta.analyze prog in
  let n = Nait.apply_txn_reads prog pta in
  check_bool "marked some transactional reads" true (n >= 1);
  (* the weights-table read is marked; the G.total read is not (written
     in txn) *)
  Stm_ir.Ir.iter_methods prog (fun m ->
      Array.iter
        (fun ins ->
          match ins with
          | Stm_ir.Ir.LoadS { cls = "G"; fld = "total"; note; _ } ->
              check_bool "hot counter read still logged" false
                note.Stm_ir.Ir.txn_unlogged
          | _ -> ())
        m.Stm_ir.Ir.body)

let txn_read_removal_correct_and_cheaper () =
  let run ~mark cfg =
    let prog = Stm_jtlang.Jt.compile txn_read_removal_src in
    if mark then begin
      let pta = Pta.analyze prog in
      ignore (Nait.apply_txn_reads prog pta : int)
    end;
    let out = Stm_ir.Interp.run ~cfg prog in
    (match out.Stm_ir.Interp.result.Stm_runtime.Sched.exns with
    | [] -> ()
    | (t, e) :: _ -> Alcotest.failf "thread %d: %s" t (Printexc.to_string e));
    out
  in
  let base = run ~mark:false Stm_core.Config.eager_weak in
  let opt = run ~mark:true Stm_core.Config.eager_weak in
  Alcotest.(check (list string))
    "same result" base.Stm_ir.Interp.prints opt.Stm_ir.Interp.prints;
  check_bool "fewer transactional reads logged" true
    (opt.Stm_ir.Interp.stats.Stm_core.Stats.txn_reads
    < base.Stm_ir.Interp.stats.Stm_core.Stats.txn_reads);
  (* under strong atomicity the mark must be ignored (unsound there) *)
  let strong_marked = run ~mark:true Stm_core.Config.eager_strong in
  let strong_plain = run ~mark:false Stm_core.Config.eager_strong in
  check_int "strong ignores the mark"
    strong_plain.Stm_ir.Interp.stats.Stm_core.Stats.txn_reads
    strong_marked.Stm_ir.Interp.stats.Stm_core.Stats.txn_reads

let suite =
  suite
  @ [
      ( "analysis:txn-read-removal",
        [
          Alcotest.test_case "marks only safe reads" `Quick txn_read_removal_marks;
          Alcotest.test_case "correct, cheaper, strong-guarded" `Quick
            txn_read_removal_correct_and_cheaper;
        ] );
    ]

(* ------------------------------------------------------------------ *)
(* Points-to precision                                                 *)
(* ------------------------------------------------------------------ *)

let pta_return_flow () =
  (* objects flow through returns into callers *)
  let src =
    {|
class D { int v; }
class G { static D g; }
class Main {
  static D mk() { return new D(); }
  static void main() {
    D d = mk();
    G.g = d;
    atomic { G.g.v = 1; }
    d.v = 2;
  }
}|}
  in
  let prog = Stm_jtlang.Jt.compile src in
  let pta = Pta.analyze prog in
  (* the non-txn write d.v reaches the same abstract object the txn
     writes: barrier must be kept *)
  let kept = ref false in
  Stm_ir.Ir.iter_methods prog (fun m ->
      Array.iter
        (fun ins ->
          match ins with
          | Stm_ir.Ir.Store { cls = "D"; fld = "v"; note; _ }
            when m.Stm_ir.Ir.mname = "main" ->
              let d =
                Nait.decide pta
                  {
                    Pta.site = note.Stm_ir.Ir.site;
                    meth = m;
                    kind = `Write;
                    array = false;
                    clinit_own = false;
                  }
              in
              if not d.Nait.removable then kept := true
          | _ -> ())
        m.Stm_ir.Ir.body);
  check_bool "return-flowed object tracked" true !kept

let pta_virtual_dispatch_precision () =
  (* only run methods of classes that actually flow to the receiver are
     analyzed *)
  let src =
    {|
class A { int f() { return 1; } }
class B extends A { int f() { return 2; } }
class C extends A { int f() { return unreachable(); }
  static int unreachable() { return G.dead; }
}
class G { static int dead; }
class Main { static void main() {
  A x = new B();
  print(x.f());
} }|}
  in
  let pta = analyze src in
  let ms = Pta.reachable_methods pta in
  check_bool "B.f reachable" true (List.mem ("B::f", Pta.Nontxn) ms);
  check_bool "C.f not reachable (no C instance)" false
    (List.exists (fun (k, _) -> k = "C::f") ms);
  check_bool "A.f not reachable either" false
    (List.exists (fun (k, _) -> k = "A::f") ms)

let pta_spawn_wires_run () =
  let src =
    {|
class W extends Thread {
  int v;
  void run() { v = 7; }
}
class Main { static void main() {
  W w = new W();
  int t = spawn(w);
  join(t);
  print(w.v);
} }|}
  in
  let pta = analyze src in
  check_bool "run reachable via spawn" true
    (List.mem ("W::run", Pta.Nontxn) (Pta.reachable_methods pta))

let suite =
  suite
  @ [
      ( "analysis:precision",
        [
          Alcotest.test_case "return flow" `Quick pta_return_flow;
          Alcotest.test_case "virtual dispatch" `Quick pta_virtual_dispatch_precision;
          Alcotest.test_case "spawn wires run" `Quick pta_spawn_wires_run;
        ] );
    ]
