(* Workload correctness: every benchmark computes the same checksums
   under every barrier configuration and optimization level, across
   thread counts, with healthy statistics. Plus small-scale shape checks
   for every figure of the evaluation. *)

open Stm_workloads

let check_bool = Alcotest.(check bool)

let run_workload w ~cfg ~opt ~params =
  let prog = Workload.program w in
  (match opt with
  | `None -> ()
  | `O2 -> ignore (Stm_jit.Opt.optimize Stm_jit.Opt.O2 prog)
  | `Whole ->
      ignore (Stm_jit.Opt.optimize Stm_jit.Opt.O1 prog);
      let pta = Stm_analysis.Pta.analyze prog in
      ignore (Stm_analysis.Nait.apply prog pta);
      ignore (Stm_analysis.Thread_local.apply prog pta);
      ignore (Stm_jit.Aggregate.run prog));
  let out = Stm_ir.Interp.run ~cfg ~params prog in
  (match out.Stm_ir.Interp.result.Stm_runtime.Sched.exns with
  | [] -> ()
  | (tid, e) :: _ ->
      Alcotest.failf "%s: thread %d raised %s" w.Workload.name tid
        (Printexc.to_string e));
  check_bool
    (w.Workload.name ^ " completed")
    true
    (out.Stm_ir.Interp.result.Stm_runtime.Sched.status
    = Stm_runtime.Sched.Completed);
  out

let nontxn_configs =
  [
    ("weak", Stm_core.Config.eager_weak, `None);
    ("strong", Stm_core.Config.eager_strong, `None);
    ("strong+O2", Stm_core.Config.eager_strong, `O2);
    ("strong+dea+O2", Stm_core.Config.(with_dea eager_strong), `O2);
    ("wholeprog", Stm_core.Config.(with_dea eager_strong), `Whole);
  ]

(* every kernel prints identical checksums under every configuration *)
let kernel_case (w : Workload.t) =
  Alcotest.test_case w.Workload.name `Quick (fun () ->
      let w = Workload.scaled w 0.4 in
      let reference = ref None in
      List.iter
        (fun (cname, cfg, opt) ->
          let out = run_workload w ~cfg ~opt ~params:w.Workload.params in
          match !reference with
          | None -> reference := Some out.Stm_ir.Interp.prints
          | Some r ->
              Alcotest.(check (list string))
                (w.Workload.name ^ " output under " ^ cname)
                r out.Stm_ir.Interp.prints)
        nontxn_configs)

let txn_configs =
  [
    ("locks", Stm_core.Config.eager_weak, `None, 1);
    ("weak", Stm_core.Config.eager_weak, `None, 0);
    ("lazy-weak", Stm_core.Config.lazy_weak, `None, 0);
    ("strong", Stm_core.Config.eager_strong, `None, 0);
    ("lazy-strong", Stm_core.Config.lazy_strong, `None, 0);
    ("strong+dea+O2", Stm_core.Config.(with_dea eager_strong), `O2, 0);
    ("wholeprog", Stm_core.Config.(with_dea eager_strong), `Whole, 0);
    ("quiesce", Stm_core.Config.(with_quiescence eager_weak), `None, 0);
  ]

let txn_case (w : Workload.t) nthreads =
  let name = Printf.sprintf "%s (nt=%d)" w.Workload.name nthreads in
  Alcotest.test_case name `Quick (fun () ->
      let w = Workload.scaled w 0.3 in
      let reference = ref None in
      List.iter
        (fun (cname, cfg, opt, locks) ->
          let params =
            [ ("threads", nthreads); ("use_locks", locks) ] @ w.Workload.params
          in
          let out = run_workload w ~cfg ~opt ~params in
          (* transactions must actually run in STM modes *)
          if locks = 0 then
            check_bool
              (name ^ " commits under " ^ cname)
              true
              (out.Stm_ir.Interp.stats.Stm_core.Stats.commits > 0);
          match !reference with
          | None -> reference := Some out.Stm_ir.Interp.prints
          | Some r ->
              Alcotest.(check (list string))
                (name ^ " output under " ^ cname)
                r out.Stm_ir.Interp.prints)
        txn_configs)

(* ------------------------------------------------------------------ *)
(* Figure shape checks (small scale)                                   *)
(* ------------------------------------------------------------------ *)

let level r name = List.assoc name r.Stm_harness.Figures.levels

let fig15_shape () =
  let rows = Stm_harness.Figures.fig15 ~scale:0.4 () in
  List.iter
    (fun (r : Stm_harness.Figures.overhead_row) ->
      check_bool (r.bench ^ ": NoOpts has real overhead") true
        (level r "NoOpts" > 1.3);
      check_bool (r.bench ^ ": NAIT removes (almost) all overhead") true
        (level r "+NAIT" < 1.1);
      check_bool (r.bench ^ ": elim never hurts") true
        (level r "+BarrierElim" <= level r "NoOpts" +. 0.01))
    rows;
  (* DEA: dramatic except mpegaudio (static arrays stay public) *)
  let get name = List.find (fun (r : Stm_harness.Figures.overhead_row) -> r.bench = name) rows in
  check_bool "compress: DEA slashes overhead" true
    (level (get "compress") "+DEA" < 1.4);
  check_bool "mpegaudio: DEA does not help" true
    (level (get "mpegaudio") "+DEA"
    > level (get "mpegaudio") "+BarrierAggr" -. 0.05);
  check_bool "mtrt: barrier elim helps (~30%)" true
    (level (get "mtrt") "+BarrierElim" < level (get "mtrt") "NoOpts" -. 0.2)

let fig16_17_shape () =
  let both = Stm_harness.Figures.fig15 ~scale:0.3 () in
  let reads = Stm_harness.Figures.fig16 ~scale:0.3 () in
  let writes = Stm_harness.Figures.fig17 ~scale:0.3 () in
  List.iter
    (fun ((b : Stm_harness.Figures.overhead_row), r, w) ->
      (* partial barriers never cost more than both *)
      check_bool (b.bench ^ ": reads-only <= both") true
        (level r "NoOpts" <= level b "NoOpts" +. 0.02);
      check_bool (b.bench ^ ": writes-only <= both") true
        (level w "NoOpts" <= level b "NoOpts" +. 0.02))
    (List.map2 (fun b (r, w) -> (b, r, w)) both (List.combine reads writes));
  (* "the majority of the overhead comes from the cost of the write
     barrier" - in aggregate (read-heavy mtrt is the one exception) *)
  let sum rows =
    List.fold_left (fun a r -> a +. level r "NoOpts") 0.0 rows
  in
  check_bool "write barriers dominate in aggregate" true
    (sum writes > sum reads)

let fig18_shape () =
  let s = Stm_harness.Figures.fig18 ~threads:[ 1; 4 ] () in
  check_bool "tsp outputs consistent" true s.Stm_harness.Figures.outputs_consistent;
  let pt label n =
    let ser = List.find (fun x -> x.Stm_harness.Figures.label = label) s.Stm_harness.Figures.series in
    List.assoc n ser.Stm_harness.Figures.points
  in
  check_bool "weak scales" true (pt "WeakAtom" 4 * 2 < pt "WeakAtom" 1);
  check_bool "strong-noopt 1t overhead is large (paper ~3x)" true
    (float_of_int (pt "StrongNoOpts" 1) /. float_of_int (pt "WeakAtom" 1) > 2.0);
  check_bool "whole-prog within 15% of weak" true
    (float_of_int (pt "+WholeProg" 1) /. float_of_int (pt "WeakAtom" 1) < 1.15);
  check_bool "dea between jit and wholeprog" true
    (pt "+DEA" 1 < pt "+JitOpts" 1 && pt "+WholeProg" 1 < pt "+DEA" 1)

let fig19_shape () =
  let s = Stm_harness.Figures.fig19 ~threads:[ 1; 8 ] () in
  check_bool "oo7 outputs consistent" true s.Stm_harness.Figures.outputs_consistent;
  let pt label n =
    let ser = List.find (fun x -> x.Stm_harness.Figures.label = label) s.Stm_harness.Figures.series in
    List.assoc n ser.Stm_harness.Figures.points
  in
  (* coarse root locking does not scale *)
  check_bool "synch flat" true
    (float_of_int (pt "Synch" 8) > 0.8 *. float_of_int (pt "Synch" 1));
  (* transactions do *)
  check_bool "weak scales" true (pt "WeakAtom" 8 * 3 < pt "WeakAtom" 1);
  check_bool "strong scales too" true (pt "StrongNoOpts" 8 * 3 < pt "StrongNoOpts" 1);
  (* strong atomicity costs little here (paper: < 11%) *)
  check_bool "strong 1t overhead small" true
    (float_of_int (pt "StrongNoOpts" 1) /. float_of_int (pt "WeakAtom" 1) < 1.15);
  (* STM overtakes the lock version at scale *)
  check_bool "stm beats locks at 8 threads" true (pt "WeakAtom" 8 < pt "Synch" 8)

let fig20_shape () =
  let s = Stm_harness.Figures.fig20 ~threads:[ 1; 8 ] () in
  check_bool "jbb outputs consistent" true s.Stm_harness.Figures.outputs_consistent;
  let pt label n =
    let ser = List.find (fun x -> x.Stm_harness.Figures.label = label) s.Stm_harness.Figures.series in
    List.assoc n ser.Stm_harness.Figures.points
  in
  check_bool "synch scales" true (pt "Synch" 8 * 2 < pt "Synch" 1);
  check_bool "weak scales" true (pt "WeakAtom" 8 * 2 < pt "WeakAtom" 1);
  check_bool "strong scales" true (pt "StrongNoOpts" 8 * 2 < pt "StrongNoOpts" 1);
  check_bool "strong 1t overhead small (paper < 11%)" true
    (float_of_int (pt "StrongNoOpts" 1) /. float_of_int (pt "WeakAtom" 1) < 1.15)

let fig6_matches_paper () =
  (* quick re-check at lower budget; the full-budget version runs in the
     litmus suite cell by cell *)
  let cells = Stm_litmus.Matrix.fig6 ~max_runs:4000 () in
  check_bool "all 45 cells match Figure 6" true (Stm_litmus.Matrix.all_match cells)

let case name f = Alcotest.test_case name `Quick f

let suite =
  [
    ("workloads:jvm98", List.map kernel_case Jvm98.all);
    ( "workloads:txn",
      [
        txn_case Tsp.tsp 1;
        txn_case Tsp.tsp 4;
        txn_case Oo7.oo7 1;
        txn_case Oo7.oo7 4;
        txn_case Jbb.jbb 1;
        txn_case Jbb.jbb 4;
      ] );
    ( "figures:shapes",
      [
        case "fig15" fig15_shape;
        case "fig16/17" fig16_17_shape;
        case "fig18 (tsp)" fig18_shape;
        case "fig19 (oo7)" fig19_shape;
        case "fig20 (jbb)" fig20_shape;
        case "fig6 matrix" fig6_matches_paper;
      ] );
  ]
