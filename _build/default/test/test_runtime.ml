(* Tests for the simulated-machine substrate: deterministic RNG,
   scheduler, virtual clocks, simulated mutex, heap. *)

open Stm_runtime

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Det_rng                                                             *)
(* ------------------------------------------------------------------ *)

let rng_deterministic () =
  let a = Det_rng.create 42 and b = Det_rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Det_rng.next a) (Det_rng.next b)
  done

let rng_seed_sensitivity () =
  let a = Det_rng.create 1 and b = Det_rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Det_rng.next a = Det_rng.next b then incr same
  done;
  check_bool "different seeds diverge" true (!same < 5)

let rng_bounds () =
  let r = Det_rng.create 7 in
  for _ = 1 to 1000 do
    let v = Det_rng.int r 13 in
    check_bool "in range" true (v >= 0 && v < 13)
  done

let rng_copy_independent () =
  let a = Det_rng.create 9 in
  ignore (Det_rng.next a);
  let b = Det_rng.copy a in
  check_int "copy continues identically" (Det_rng.next a) (Det_rng.next b)

let rng_split () =
  let a = Det_rng.create 11 in
  let b = Det_rng.split a in
  let matches = ref 0 in
  for _ = 1 to 50 do
    if Det_rng.next a = Det_rng.next b then incr matches
  done;
  check_bool "split stream is distinct" true (!matches < 5)

let rng_float_bounds () =
  let r = Det_rng.create 3 in
  for _ = 1 to 200 do
    let f = Det_rng.float r 2.5 in
    check_bool "float in range" true (f >= 0.0 && f < 2.5)
  done

let rng_bool_balanced () =
  let r = Det_rng.create 5 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Det_rng.bool r then incr trues
  done;
  check_bool "bool roughly balanced" true (!trues > 400 && !trues < 600)

(* ------------------------------------------------------------------ *)
(* Sched                                                               *)
(* ------------------------------------------------------------------ *)

let sched_basic_run () =
  let hit = ref false in
  let r = Sched.run (fun () -> hit := true) in
  check_bool "ran" true !hit;
  check_bool "completed" true (r.Sched.status = Sched.Completed)

let sched_spawn_join () =
  let order = ref [] in
  let r =
    Sched.run (fun () ->
        let t =
          Sched.spawn (fun () ->
              Sched.yield ();
              order := "child" :: !order)
        in
        Sched.join t;
        order := "parent" :: !order)
  in
  check_bool "completed" true (r.Sched.status = Sched.Completed);
  Alcotest.(check (list string)) "join ordering" [ "parent"; "child" ] !order

let sched_clock_ticks () =
  let r =
    Sched.run (fun () ->
        Sched.tick 10;
        Sched.tick 32;
        check_int "time accumulates" 42 (Sched.time ()))
  in
  check_int "makespan" 42 r.Sched.makespan

let sched_join_advances_clock () =
  let r =
    Sched.run (fun () ->
        let t = Sched.spawn (fun () -> Sched.tick 1000) in
        Sched.join t;
        check_bool "joiner clock >= finisher" true (Sched.time () >= 1000))
  in
  check_int "makespan is max clock" 1000 r.Sched.makespan

let sched_min_clock_parallelism () =
  (* two independent threads of equal work: makespan = one thread's work *)
  let r =
    Sched.run ~policy:Sched.Min_clock (fun () ->
        let work () =
          for _ = 1 to 100 do
            Sched.tick 10;
            Sched.yield ()
          done
        in
        let a = Sched.spawn work and b = Sched.spawn work in
        Sched.join a;
        Sched.join b)
  in
  check_int "parallel makespan" 1000 r.Sched.makespan

let sched_exn_recorded () =
  let r =
    Sched.run (fun () ->
        let t = Sched.spawn (fun () -> failwith "boom") in
        Sched.join t)
  in
  check_bool "completed despite exn" true (r.Sched.status = Sched.Completed);
  check_int "one exn" 1 (List.length r.Sched.exns)

let sched_fuel () =
  let r =
    Sched.run ~max_steps:100 (fun () ->
        while true do
          Sched.yield ()
        done)
  in
  check_bool "fuel exhausted" true (r.Sched.status = Sched.Fuel_exhausted)

let sched_deadlock_detected () =
  let r = Sched.run (fun () -> Sched.suspend ()) in
  (match r.Sched.status with
  | Sched.Deadlock [ 0 ] -> ()
  | _ -> Alcotest.fail "expected deadlock of main");
  ()

let sched_wake () =
  let r =
    Sched.run (fun () ->
        let t = Sched.spawn (fun () -> Sched.suspend ()) in
        (* jump our clock ahead so the child (clock 0) runs and suspends
           at the next yield *)
        Sched.tick 500;
        Sched.yield ();
        Sched.wake t;
        Sched.join t)
  in
  check_bool "completed" true (r.Sched.status = Sched.Completed);
  check_bool "woken clock advanced" true (r.Sched.makespan >= 500)

let sched_no_nesting () =
  ignore
    (Sched.run (fun () ->
         match Sched.run (fun () -> ()) with
         | exception Invalid_argument _ -> ()
         | _ -> Alcotest.fail "nested run should fail"))

let sched_not_running () =
  (match Sched.yield () with
  | exception Sched.Not_in_simulation -> ()
  | () -> Alcotest.fail "yield outside run should raise");
  check_bool "running flag" false (Sched.running ())

let sched_determinism policy () =
  let trace () =
    let log = ref [] in
    let r =
      Sched.run ~policy (fun () ->
          let mk id () =
            for i = 1 to 5 do
              log := (id, i) :: !log;
              Sched.tick ((id * 7) + i);
              Sched.yield ()
            done
          in
          let ts = List.init 3 (fun i -> Sched.spawn (mk i)) in
          List.iter Sched.join ts)
    in
    (!log, r.Sched.makespan)
  in
  let a = trace () and b = trace () in
  check_bool "two runs identical" true (a = b)

let sched_rebase () =
  let r =
    Sched.run (fun () ->
        Sched.tick 1_000_000;
        Sched.rebase ();
        Sched.tick 5)
  in
  check_int "makespan excludes pre-rebase work" 5 r.Sched.makespan

let sched_controlled_policy () =
  (* force the scheduler to always prefer the highest tid *)
  let choose _cur runnables = List.fold_left max 0 runnables in
  let order = ref [] in
  let r =
    Sched.run ~policy:(Sched.Controlled choose) (fun () ->
        let mk id () = order := id :: !order in
        let a = Sched.spawn (mk 1) in
        let b = Sched.spawn (mk 2) in
        Sched.join a;
        Sched.join b)
  in
  check_bool "completed" true (r.Sched.status = Sched.Completed);
  Alcotest.(check (list int)) "highest tid ran first" [ 1; 2 ] !order

let sched_thread_count () =
  ignore
    (Sched.run (fun () ->
         let t = Sched.spawn (fun () -> ()) in
         Sched.join t;
         check_int "two threads" 2 (Sched.thread_count ())))

(* ------------------------------------------------------------------ *)
(* Sim_mutex                                                           *)
(* ------------------------------------------------------------------ *)

let mutex_excludes () =
  let violations = ref 0 in
  ignore
    (Sched.run (fun () ->
         let m = Sim_mutex.create Cost.free in
         let inside = ref false in
         let worker () =
           for _ = 1 to 20 do
             Sim_mutex.lock m;
             if !inside then incr violations;
             inside := true;
             Sched.yield ();
             Sched.tick 3;
             Sched.yield ();
             inside := false;
             Sim_mutex.unlock m
           done
         in
         let ts = List.init 4 (fun _ -> Sched.spawn worker) in
         List.iter Sched.join ts));
  check_int "mutual exclusion" 0 !violations

let mutex_reentrant () =
  ignore
    (Sched.run (fun () ->
         let m = Sim_mutex.create Cost.free in
         Sim_mutex.lock m;
         Sim_mutex.lock m;
         check_bool "held" true (Sim_mutex.held m);
         Sim_mutex.unlock m;
         check_bool "still held after one unlock" true (Sim_mutex.held m);
         Sim_mutex.unlock m;
         check_bool "released" false (Sim_mutex.held m)))

let mutex_wrong_owner () =
  ignore
    (Sched.run (fun () ->
         let m = Sim_mutex.create Cost.free in
         Sim_mutex.lock m;
         let t =
           Sched.spawn (fun () ->
               match Sim_mutex.unlock m with
               | exception Invalid_argument _ -> ()
               | () -> Alcotest.fail "non-owner unlock should fail")
         in
         Sched.yield ();
         Sched.join t;
         Sim_mutex.unlock m))

let mutex_contention_serializes () =
  (* two threads each hold the lock for 100 cycles: makespan ~200 *)
  let r =
    Sched.run (fun () ->
        let m = Sim_mutex.create Cost.free in
        let worker () =
          Sim_mutex.lock m;
          Sched.tick 100;
          Sched.yield ();
          Sim_mutex.unlock m
        in
        let a = Sched.spawn worker and b = Sched.spawn worker in
        Sched.join a;
        Sched.join b)
  in
  check_bool "serialized" true (r.Sched.makespan >= 200)

let mutex_with_lock_exn_safe () =
  ignore
    (Sched.run (fun () ->
         let m = Sim_mutex.create Cost.free in
         (try Sim_mutex.with_lock m (fun () -> failwith "inner")
          with Failure _ -> ());
         check_bool "released after exception" false (Sim_mutex.held m)))

(* ------------------------------------------------------------------ *)
(* Heap                                                                *)
(* ------------------------------------------------------------------ *)

let heap_alloc_defaults () =
  Heap.reset ();
  let o = Heap.alloc ~cls:"C" 3 in
  check_int "oid deterministic" 1 o.Heap.oid;
  check_int "nfields" 3 (Heap.nfields o);
  check_bool "default null" true (Heap.get o 0 = Heap.Vnull);
  check_int "public txrec" Heap.shared_txrec0 (Atomic.get o.Heap.txrec)

let heap_reset_resets_ids () =
  Heap.reset ();
  let a = Heap.alloc ~cls:"C" 1 in
  Heap.reset ();
  let b = Heap.alloc ~cls:"C" 1 in
  check_int "ids restart" a.Heap.oid b.Heap.oid

let heap_get_set () =
  Heap.reset ();
  let o = Heap.alloc ~cls:"C" 2 in
  Heap.set o 1 (Heap.Vint 42);
  check_bool "roundtrip" true (Heap.get o 1 = Heap.Vint 42)

let heap_value_equal () =
  Heap.reset ();
  let a = Heap.alloc ~cls:"C" 1 and b = Heap.alloc ~cls:"C" 1 in
  check_bool "same ref" true (Heap.value_equal (Heap.Vref a) (Heap.Vref a));
  check_bool "diff refs" false (Heap.value_equal (Heap.Vref a) (Heap.Vref b));
  check_bool "ints" true (Heap.value_equal (Heap.Vint 3) (Heap.Vint 3));
  check_bool "int/null" false (Heap.value_equal (Heap.Vint 3) Heap.Vnull)

let heap_array () =
  Heap.reset ();
  let a = Heap.alloc_array 4 (Heap.Vint 0) in
  check_bool "array kind" true (a.Heap.kind = `Arr);
  check_int "length" 4 (Heap.nfields a)

let heap_statics () =
  Heap.reset ();
  let s = Heap.alloc_statics ~cls:"Main" 2 in
  check_bool "statics kind" true (s.Heap.kind = `Statics)

let case name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "runtime:rng",
      [
        case "deterministic" rng_deterministic;
        case "seed sensitivity" rng_seed_sensitivity;
        case "int bounds" rng_bounds;
        case "copy" rng_copy_independent;
        case "split" rng_split;
        case "float bounds" rng_float_bounds;
        case "bool balanced" rng_bool_balanced;
      ] );
    ( "runtime:sched",
      [
        case "basic run" sched_basic_run;
        case "spawn/join" sched_spawn_join;
        case "clock ticks" sched_clock_ticks;
        case "join advances clock" sched_join_advances_clock;
        case "min-clock parallelism" sched_min_clock_parallelism;
        case "exceptions recorded" sched_exn_recorded;
        case "fuel" sched_fuel;
        case "deadlock detection" sched_deadlock_detected;
        case "wake" sched_wake;
        case "no nesting" sched_no_nesting;
        case "not running" sched_not_running;
        case "determinism (min-clock)" (sched_determinism Sched.Min_clock);
        case "determinism (round-robin)" (sched_determinism Sched.Round_robin);
        case "determinism (random 1)" (sched_determinism (Sched.Random 1));
        case "rebase" sched_rebase;
        case "controlled policy" sched_controlled_policy;
        case "thread count" sched_thread_count;
      ] );
    ( "runtime:mutex",
      [
        case "mutual exclusion" mutex_excludes;
        case "reentrant" mutex_reentrant;
        case "wrong owner" mutex_wrong_owner;
        case "contention serializes" mutex_contention_serializes;
        case "with_lock exn safe" mutex_with_lock_exn_safe;
      ] );
    ( "runtime:heap",
      [
        case "alloc defaults" heap_alloc_defaults;
        case "reset ids" heap_reset_resets_ids;
        case "get/set" heap_get_set;
        case "value equality" heap_value_equal;
        case "arrays" heap_array;
        case "statics" heap_statics;
      ] );
  ]
