(* Front-end tests: lexer, parser, lowering, and error reporting. *)

open Stm_jtlang

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_jt ?(params = []) ?(cfg = Stm_core.Config.eager_weak) src =
  let prog = Jt.compile src in
  let out = Stm_ir.Interp.run ~cfg ~params prog in
  (match out.Stm_ir.Interp.result.Stm_runtime.Sched.exns with
  | [] -> ()
  | (tid, e) :: _ ->
      Alcotest.failf "thread %d raised %s" tid (Printexc.to_string e));
  out.Stm_ir.Interp.prints

let prints_of ?params ?cfg src = run_jt ?params ?cfg src

let expect_error src =
  match Jt.compile src with
  | exception Jt.Error _ -> ()
  | _ -> Alcotest.fail "expected a compile error"

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let lexer_tokens () =
  let lx = Lexer.tokenize "t" "class Foo { int x; } // comment" in
  check_bool "first is class" true (Lexer.peek lx = Lexer.KW "class");
  Lexer.advance lx;
  check_bool "then ident" true (Lexer.peek lx = Lexer.IDENT "Foo")

let lexer_two_char_ops () =
  let lx = Lexer.tokenize "t" "<= >= == != && || += ++" in
  let rec collect acc =
    match Lexer.peek lx with
    | Lexer.EOF -> List.rev acc
    | t ->
        Lexer.advance lx;
        collect (t :: acc)
  in
  Alcotest.(check int) "eight tokens" 8 (List.length (collect []))

let lexer_string_escapes () =
  let lx = Lexer.tokenize "t" {|"a\nb"|} in
  check_bool "escaped" true (Lexer.peek lx = Lexer.STR "a\nb")

let lexer_line_numbers () =
  let lx = Lexer.tokenize "t" "x\ny\nz" in
  check_int "line 1" 1 (Lexer.line lx);
  Lexer.advance lx;
  check_int "line 2" 2 (Lexer.line lx)

let lexer_block_comment () =
  let lx = Lexer.tokenize "t" "/* multi\nline */ x" in
  check_bool "skips comment" true (Lexer.peek lx = Lexer.IDENT "x");
  check_int "tracks lines in comment" 2 (Lexer.line lx)

let lexer_unterminated_string () =
  match Lexer.tokenize "t" {|"abc|} with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected lexer error"

(* ------------------------------------------------------------------ *)
(* Parser / lowering via execution                                     *)
(* ------------------------------------------------------------------ *)

let jt_arith () =
  let p =
    prints_of
      {|
class Main { static void main() {
  print(2 + 3 * 4);
  print((2 + 3) * 4);
  print(10 / 3);
  print(10 % 3);
  print(-5);
  print(7 - 2 - 1);
} }|}
  in
  Alcotest.(check (list string)) "values" [ "14"; "20"; "3"; "1"; "-5"; "4" ] p

let jt_precedence_bool () =
  let p =
    prints_of
      {|
class Main { static void main() {
  if (1 < 2 && 3 > 2 || false) { print(1); } else { print(0); }
  if (!(1 == 2)) { print(3); }
} }|}
  in
  Alcotest.(check (list string)) "bool logic" [ "1"; "3" ] p

let jt_short_circuit () =
  (* the right operand of && must not evaluate when the left is false:
     here it would fault on a null dereference *)
  let p =
    prints_of
      {|
class Box { int v; }
class Main { static void main() {
  Box b = null;
  if (b != null && b.v == 1) { print(1); } else { print(2); }
  Box c = new Box();
  c.v = 1;
  if (c != null && c.v == 1) { print(3); }
} }|}
  in
  Alcotest.(check (list string)) "short circuit" [ "2"; "3" ] p

let jt_while_for () =
  let p =
    prints_of
      {|
class Main { static void main() {
  int s = 0;
  for (int i = 0; i < 5; i++) { s += i; }
  print(s);
  int n = 0;
  while (n < 3) { n++; }
  print(n);
} }|}
  in
  Alcotest.(check (list string)) "loops" [ "10"; "3" ] p

let jt_if_else_chain () =
  let p =
    prints_of
      {|
class Main { static void main() {
  for (int i = 0; i < 3; i++) {
    if (i == 0) { print(100); }
    else if (i == 1) { print(200); }
    else { print(300); }
  }
} }|}
  in
  Alcotest.(check (list string)) "chain" [ "100"; "200"; "300" ] p

let jt_inheritance_dispatch () =
  let p =
    prints_of
      {|
class A { int f() { return 1; } }
class B extends A { int f() { return 2; } }
class C extends A { }
class Main { static void main() {
  A a = new A();
  A b = new B();
  A c = new C();
  print(a.f());
  print(b.f());
  print(c.f());
} }|}
  in
  Alcotest.(check (list string)) "virtual dispatch" [ "1"; "2"; "1" ] p

let jt_inherited_fields () =
  let p =
    prints_of
      {|
class A { int x; }
class B extends A { int y; }
class Main { static void main() {
  B b = new B();
  b.x = 5;
  b.y = 7;
  print(b.x + b.y);
} }|}
  in
  Alcotest.(check (list string)) "field layout" [ "12" ] p

let jt_statics () =
  let p =
    prints_of
      {|
class Counter { static int n = 10; }
class Main { static void main() {
  Counter.n = Counter.n + 5;
  print(Counter.n);
} }|}
  in
  Alcotest.(check (list string)) "static init + access" [ "15" ] p

let jt_implicit_this_and_statics () =
  let p =
    prints_of
      {|
class Main {
  static int total = 0;
  int v;
  void bump() { v = v + 1; total = total + v; }
  static void main() {
    Main m = new Main();
    m.bump();
    m.bump();
    print(m.v);
    print(total);
  }
}|}
  in
  Alcotest.(check (list string)) "implicit receivers" [ "2"; "3" ] p

let jt_arrays_2d () =
  let p =
    prints_of
      {|
class Main { static void main() {
  int[][] m = new int[3][];
  for (int i = 0; i < 3; i++) { m[i] = new int[4]; }
  m[1][2] = 42;
  print(m[1][2]);
  print(m.length);
  print(m[0].length);
} }|}
  in
  Alcotest.(check (list string)) "2d arrays" [ "42"; "3"; "4" ] p

let jt_recursion () =
  let p =
    prints_of
      {|
class Main {
  static int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
  }
  static void main() { print(fib(12)); }
}|}
  in
  Alcotest.(check (list string)) "fib" [ "144" ] p

let jt_strings () =
  let p =
    prints_of
      {|
class Main { static void main() {
  str s = "hello";
  print(s);
} }|}
  in
  Alcotest.(check (list string)) "strings" [ "\"hello\"" ] p

let jt_builtins () =
  let p =
    prints_of ~params:[ ("k", 7) ]
      {|
class Main { static void main() {
  print(abs(-5));
  print(min(3, 9));
  print(max(3, 9));
  print(param("k"));
  int r = rand(10);
  assert(r >= 0 && r < 10);
} }|}
  in
  Alcotest.(check (list string)) "builtins" [ "5"; "3"; "9"; "7" ] p

let jt_threads () =
  let p =
    prints_of
      {|
class W extends Thread {
  int id;
  static int sum = 0;
  void run() { atomic { sum = sum + id; } }
}
class Main { static void main() {
  int[] ts = new int[4];
  for (int i = 0; i < 4; i++) {
    W w = new W();
    w.id = i + 1;
    ts[i] = spawn(w);
  }
  for (int i = 0; i < 4; i++) { join(ts[i]); }
  print(W.sum);
} }|}
  in
  Alcotest.(check (list string)) "threads" [ "10" ] p

let jt_synchronized () =
  let p =
    prints_of
      {|
class L { int v; }
class W extends Thread {
  L lock;
  void run() {
    for (int i = 0; i < 50; i++) {
      synchronized (lock) { lock.v = lock.v + 1; }
    }
  }
}
class Main { static void main() {
  L l = new L();
  int[] ts = new int[3];
  for (int i = 0; i < 3; i++) {
    W w = new W();
    w.lock = l;
    ts[i] = spawn(w);
  }
  for (int i = 0; i < 3; i++) { join(ts[i]); }
  print(l.v);
} }|}
  in
  Alcotest.(check (list string)) "synchronized counter" [ "150" ] p

let jt_atomic_register_restore () =
  (* regression: locals modified inside an aborted attempt must be
     restored on re-execution *)
  let p =
    prints_of ~cfg:Stm_core.Config.eager_strong
      {|
class C { int v; }
class W extends Thread {
  C c;
  void run() {
    for (int i = 0; i < 20; i++) {
      int acc = 1000;
      atomic {
        acc = acc + c.v;
        c.v = acc - 999;
      }
      assert(acc >= 1000);
    }
  }
}
class Main { static void main() {
  C c = new C();
  int[] ts = new int[3];
  for (int i = 0; i < 3; i++) {
    W w = new W();
    w.c = c;
    ts[i] = spawn(w);
  }
  for (int i = 0; i < 3; i++) { join(ts[i]); }
  print(c.v);
} }|}
  in
  Alcotest.(check (list string)) "register restore across retries" [ "60" ] p

(* ------------------------------------------------------------------ *)
(* Errors                                                              *)
(* ------------------------------------------------------------------ *)

let err_unknown_var () =
  expect_error "class Main { static void main() { print(nope); } }"

let err_unknown_field () =
  expect_error
    "class C { int x; } class Main { static void main() { C c = new C(); print(c.y); } }"

let err_unknown_class () =
  expect_error "class Main { static void main() { D d = new D(); } }"

let err_type_mismatch () =
  expect_error "class Main { static void main() { int x = true; } }"

let err_return_in_atomic () =
  expect_error
    "class Main { static int f() { atomic { return 1; } } static void main() { } }"

let err_no_main () = expect_error "class C { int x; }"

let err_duplicate_class () =
  expect_error "class C { } class C { } class Main { static void main() { } }"

let err_arity () =
  expect_error
    "class Main { static int f(int x) { return x; } static void main() { print(f(1, 2)); } }"

let err_this_in_static () =
  expect_error "class Main { static void main() { print(this.x); } }"

let err_bad_assign_target () =
  expect_error "class Main { static void main() { 5 = 3; } }"

let err_instance_field_initializer () =
  expect_error "class C { int x = 5; } class Main { static void main() { } }"

let err_line_numbers () =
  (* the error should carry the right source line *)
  match Jt.compile "class Main {\n  static void main() {\n    print(nope);\n  }\n}" with
  | exception Jt.Error (_, line) -> check_int "line" 3 line
  | _ -> Alcotest.fail "expected error"

let case name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "jt:lexer",
      [
        case "tokens" lexer_tokens;
        case "two-char operators" lexer_two_char_ops;
        case "string escapes" lexer_string_escapes;
        case "line numbers" lexer_line_numbers;
        case "block comments" lexer_block_comment;
        case "unterminated string" lexer_unterminated_string;
      ] );
    ( "jt:semantics",
      [
        case "arithmetic" jt_arith;
        case "boolean precedence" jt_precedence_bool;
        case "short circuit" jt_short_circuit;
        case "while/for" jt_while_for;
        case "if-else chain" jt_if_else_chain;
        case "virtual dispatch" jt_inheritance_dispatch;
        case "inherited fields" jt_inherited_fields;
        case "statics" jt_statics;
        case "implicit this/statics" jt_implicit_this_and_statics;
        case "2d arrays" jt_arrays_2d;
        case "recursion" jt_recursion;
        case "strings" jt_strings;
        case "builtins" jt_builtins;
        case "threads" jt_threads;
        case "synchronized" jt_synchronized;
        case "atomic register restore" jt_atomic_register_restore;
      ] );
    ( "jt:errors",
      [
        case "unknown variable" err_unknown_var;
        case "unknown field" err_unknown_field;
        case "unknown class" err_unknown_class;
        case "type mismatch" err_type_mismatch;
        case "return in atomic" err_return_in_atomic;
        case "no main" err_no_main;
        case "duplicate class" err_duplicate_class;
        case "call arity" err_arity;
        case "this in static" err_this_in_static;
        case "bad assign target" err_bad_assign_target;
        case "instance field initializer" err_instance_field_initializer;
        case "error line numbers" err_line_numbers;
      ] );
  ]
