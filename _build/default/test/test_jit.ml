(* Tests for the JIT optimization passes (Section 6): immutability
   elimination, intraprocedural escape analysis, barrier aggregation. *)

open Stm_ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let compile = Stm_jtlang.Jt.compile

(* Count notes by barrier kind, optionally restricted to one field. *)
let count prog pred =
  let n = ref 0 in
  Ir.iter_methods prog (fun m ->
      Array.iter
        (fun ins ->
          match ins with
          | Ir.Load { note; _ } | Ir.Store { note; _ } | Ir.LoadS { note; _ }
          | Ir.StoreS { note; _ } | Ir.ALoad { note; _ } | Ir.AStore { note; _ }
            ->
              if pred ins note then incr n
          | _ -> ())
        m.Ir.body);
  !n

let removed_with reason _ins (note : Ir.note) =
  note.Ir.barrier = Ir.Bar_removed reason

(* ------------------------------------------------------------------ *)
(* Immutability                                                        *)
(* ------------------------------------------------------------------ *)

let immutable_final_reads () =
  let prog =
    compile
      {|
class C { final int k; int v; }
class Main { static void main() {
  C c = new C();
  print(c.k + c.v);
} }|}
  in
  let n = Stm_jit.Immutable.run prog in
  check_int "one final read removed" 1 n;
  check_int "final read marked" 1 (count prog (removed_with "immutable"))

let immutable_static_final () =
  let prog =
    compile
      {|
class G { static final int limit = 10; }
class Main { static void main() { print(G.limit); } }|}
  in
  check_int "static final read removed" 1 (Stm_jit.Immutable.run prog)

let immutable_leaves_writes () =
  let prog =
    compile
      {|
class C { final int k; }
class Main { static void main() {
  C c = new C();
  c.k = 1;
  print(c.k);
} }|}
  in
  ignore (Stm_jit.Immutable.run prog);
  let kept_writes =
    count prog (fun ins note ->
        match ins with
        | Ir.Store _ -> note.Ir.barrier = Ir.Bar_auto
        | _ -> false)
  in
  check_int "final store keeps its barrier" 1 kept_writes

(* ------------------------------------------------------------------ *)
(* Intraprocedural escape                                              *)
(* ------------------------------------------------------------------ *)

let escape_local_removed () =
  let prog =
    compile
      {|
class C { int v; }
class Main { static void main() {
  C c = new C();
  c.v = 1;
  print(c.v);
} }|}
  in
  let n = Stm_jit.Escape_intra.run prog in
  check_bool "local accesses removed" true (n >= 2)

let escape_store_to_global_kills () =
  let prog =
    compile
      {|
class C { int v; }
class G { static C shared; }
class Main { static void main() {
  C c = new C();
  c.v = 1;        // before escape: removable
  G.shared = c;   // escapes here
  c.v = 2;        // after escape: must keep the barrier
  print(c.v);
} }|}
  in
  ignore (Stm_jit.Escape_intra.run prog);
  let removed = count prog (removed_with "escape") in
  let kept =
    count prog (fun ins note ->
        match ins with
        | Ir.Store { fld = "v"; _ } -> note.Ir.barrier = Ir.Bar_auto
        | _ -> false)
  in
  check_int "pre-escape access removed" 1 removed;
  check_int "post-escape accesses kept" 1 kept

let escape_alias_soundness () =
  (* regression: escaping through a copy must invalidate the original
     register too *)
  let prog =
    compile
      {|
class C { int v; }
class G { static C shared; }
class Main { static void main() {
  C a = new C();
  C b = a;
  G.shared = b;   // a's object escapes via the alias
  a.v = 7;        // must keep its barrier
  print(a.v);
} }|}
  in
  ignore (Stm_jit.Escape_intra.run prog);
  let kept_store =
    count prog (fun ins note ->
        match ins with
        | Ir.Store { fld = "v"; _ } -> note.Ir.barrier = Ir.Bar_auto
        | _ -> false)
  in
  check_int "aliased store keeps barrier" 1 kept_store

let escape_call_kills () =
  let prog =
    compile
      {|
class C { int v; }
class Main {
  static void sink(C c) { }
  static void main() {
    C c = new C();
    sink(c);
    c.v = 1;     // may have escaped through the call
    print(c.v);
  }
}|}
  in
  ignore (Stm_jit.Escape_intra.run prog);
  check_int "post-call accesses kept" 0 (count prog (removed_with "escape"))

let escape_join_is_intersection () =
  let prog =
    compile
      {|
class C { int v; }
class G { static C shared; }
class Main { static void main() {
  C c = new C();
  if (rand(2) == 0) { G.shared = c; }
  c.v = 1;      // escaped on one path: keep
  print(c.v);
} }|}
  in
  ignore (Stm_jit.Escape_intra.run prog);
  let kept =
    count prog (fun ins note ->
        match ins with
        | Ir.Store { fld = "v"; _ } | Ir.Load { fld = "v"; _ } ->
            note.Ir.barrier = Ir.Bar_auto
        | _ -> false)
  in
  check_int "both v accesses kept" 2 kept

let escape_spawn_kills () =
  let prog =
    compile
      {|
class W extends Thread { int v; void run() { } }
class Main { static void main() {
  W w = new W();
  w.v = 1;            // pre-spawn: removable (thread object still local)
  int t = spawn(w);
  w.v = 2;            // post-spawn: shared with the thread
  join(t);
  print(w.v);
} }|}
  in
  ignore (Stm_jit.Escape_intra.run prog);
  let kept =
    count prog (fun ins note ->
        match ins with
        | Ir.Store { fld = "v"; _ } -> note.Ir.barrier = Ir.Bar_auto
        | _ -> false)
  in
  check_int "post-spawn store kept" 1 kept

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

let agg_groups_same_object () =
  let prog =
    compile
      {|
class C { int a; int b; int c; }
class Main { static void main() {
  C x = new C();
  G.p = x;
  x.a = 1;
  x.b = 2;
  x.c = x.a + x.b;
  print(x.c);
} }
class G { static C p; }|}
  in
  (* neutralize escape analysis: x escapes via G.p first *)
  let n = Stm_jit.Aggregate.run prog in
  check_bool "group formed" true (n >= 3);
  let starts =
    count prog (fun _ note ->
        match note.Ir.barrier with Ir.Bar_agg_start _ -> true | _ -> false)
  in
  check_int "single leader" 1 starts

let agg_read_only_not_aggregated () =
  let prog =
    compile
      {|
class C { int a; int b; }
class G { static C p; }
class Main { static void main() {
  C x = new C();
  G.p = x;
  print(x.a + x.b);
} }|}
  in
  let n = Stm_jit.Aggregate.run prog in
  check_int "read-only group not aggregated" 0 n

let agg_call_breaks () =
  let prog =
    compile
      {|
class C { int a; int b; }
class G { static C p; }
class Main {
  static void noop() { }
  static void main() {
    C x = new C();
    G.p = x;
    x.a = 1;
    noop();
    x.b = 2;
    print(1);
  }
}|}
  in
  check_int "call splits the group" 0 (Stm_jit.Aggregate.run prog)

let agg_volatile_breaks () =
  let prog =
    compile
      {|
class C { int a; volatile int f; int b; }
class G { static C p; }
class Main { static void main() {
  C x = new C();
  G.p = x;
  x.a = 1;
  x.f = 2;
  x.b = 3;
  print(1);
} }|}
  in
  check_int "volatile splits the group" 0 (Stm_jit.Aggregate.run prog)

let agg_different_objects_break () =
  let prog =
    compile
      {|
class C { int a; }
class G { static C p; static C q; }
class Main { static void main() {
  C x = new C();
  C y = new C();
  G.p = x;
  G.q = y;
  x.a = 1;
  y.a = 2;
  x.a = 3;
  print(1);
} }|}
  in
  check_int "alternating receivers never group" 0 (Stm_jit.Aggregate.run prog)

let agg_opt_levels () =
  let src =
    {|
class C { final int k; int v; }
class Main { static void main() {
  C c = new C();
  print(c.k + c.v);
} }|}
  in
  let p0 = compile src in
  let r0 = Stm_jit.Opt.optimize Stm_jit.Opt.O0 p0 in
  check_int "O0 does nothing" 0 r0.Stm_jit.Opt.immutable;
  let p1 = compile src in
  let r1 = Stm_jit.Opt.optimize Stm_jit.Opt.O1 p1 in
  check_bool "O1 runs elimination" true (r1.Stm_jit.Opt.immutable >= 1);
  Stm_jit.Opt.reset p1;
  check_int "reset restores Bar_auto" 0 (count p1 (fun _ n -> n.Ir.barrier <> Ir.Bar_auto))

let case name f = Alcotest.test_case name `Quick f

let suite =
  [
    ( "jit:immutable",
      [
        case "final reads removed" immutable_final_reads;
        case "static final" immutable_static_final;
        case "writes kept" immutable_leaves_writes;
      ] );
    ( "jit:escape",
      [
        case "local removed" escape_local_removed;
        case "escape via global" escape_store_to_global_kills;
        case "alias soundness" escape_alias_soundness;
        case "call kills" escape_call_kills;
        case "join is intersection" escape_join_is_intersection;
        case "spawn kills" escape_spawn_kills;
      ] );
    ( "jit:aggregate",
      [
        case "groups same object" agg_groups_same_object;
        case "read-only not aggregated" agg_read_only_not_aggregated;
        case "call breaks" agg_call_breaks;
        case "volatile breaks" agg_volatile_breaks;
        case "different objects break" agg_different_objects_break;
        case "opt levels + reset" agg_opt_levels;
      ] );
  ]

(* The exact example of Figure 14: [a.x = 0; a.y += 1;] compiles to one
   aggregated barrier that acquires a's record once, performs the store,
   the load and the second store, and releases with a single version
   bump. *)
let agg_figure14_example () =
  let prog =
    compile
      {|
class A { int x; int y; }
class G { static A p; }
class Main { static void main() {
  A a = new A();
  G.p = a;
  a.x = 0;
  a.y = a.y + 1;
} }|}
  in
  let folded = Stm_jit.Aggregate.run prog in
  check_int "three accesses folded" 3 folded;
  let leaders = ref [] in
  let members = ref 0 in
  Ir.iter_methods prog (fun m ->
      Ir.iter_access_notes m (fun _ note ->
          match note.Ir.barrier with
          | Ir.Bar_agg_start n -> leaders := n :: !leaders
          | Ir.Bar_agg_member -> incr members
          | _ -> ()));
  Alcotest.(check (list int)) "one group of three" [ 3 ] !leaders;
  check_int "two members" 2 !members;
  (* and it executes correctly with a single acquire *)
  let out = Stm_ir.Interp.run ~cfg:Stm_core.Config.eager_strong prog in
  (match out.Stm_ir.Interp.result.Stm_runtime.Sched.exns with
  | [] -> ()
  | (t, e) :: _ -> Alcotest.failf "thread %d: %s" t (Printexc.to_string e));
  (* two atomic operations in total: the barrier of [G.p = a] and the
     single aggregated acquire covering all three accesses *)
  check_int "single atomic op for the whole group" 2
    out.Stm_ir.Interp.stats.Stm_core.Stats.atomic_ops

let suite =
  suite
  @ [
      ( "jit:figure14",
        [ Alcotest.test_case "exact Figure 14 example" `Quick agg_figure14_example ] );
    ]
