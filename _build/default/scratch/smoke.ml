open Stm_workloads
let () =
  let w = Workload.scaled Jvm98.mpegaudio 0.4 in
  let prog = Workload.program w in
  ignore (Stm_jit.Opt.optimize Stm_jit.Opt.O1 prog);
  let pta = Stm_analysis.Pta.analyze prog in
  ignore (Stm_analysis.Nait.apply prog pta);
  ignore (Stm_analysis.Thread_local.apply prog pta);
  ignore (Stm_jit.Aggregate.run prog);
  Stm_ir.Ir.iter_methods prog (fun m ->
    Stm_ir.Ir.iter_access_notes m (fun ins note ->
      match note.Stm_ir.Ir.barrier with
      | Stm_ir.Ir.Bar_auto | Stm_ir.Ir.Bar_agg_start _ | Stm_ir.Ir.Bar_agg_member ->
          Fmt.pr "KEPT %s::%s : %a@." m.mcls m.mname Stm_ir.Ir.pp_instr ins
      | _ -> ()))
